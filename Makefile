GO ?= go

.PHONY: all build vet test race ci bench bench-smoke

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate plus the race detector over the parallelized packages.
ci: build vet race

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Quick hot-path perf snapshot; writes BENCH_smoke.json for the
# perf trajectory (see BENCH_0001.json for the PR-1 before/after).
bench-smoke:
	./scripts/bench_smoke.sh
