package main

import (
	"testing"
)

func TestRunSmallAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	args := []string{
		"-corpus", "fashionmnist", "-train", "24", "-test", "24",
		"-hidden", "16", "-epochs", "4", "-every", "2",
	}
	if err := run(args); err != nil {
		t.Fatalf("miaeval run: %v", err)
	}
}

func TestRunRejectsBadCorpusAndFlags(t *testing.T) {
	if err := run([]string{"-corpus", "nope", "-epochs", "1"}); err == nil {
		t.Fatal("unknown corpus accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
