// Command miaeval runs the Modified Prediction Entropy attack against a
// single model trained centrally on one synthetic corpus, illustrating
// how the vulnerability grows with training epochs (the overfitting →
// leakage link of RQ6 in isolation).
//
// Usage:
//
//	miaeval -corpus purchase100 -train 64 -epochs 40
package main

import (
	"flag"
	"fmt"
	"os"

	"gossipmia/internal/data"
	"gossipmia/internal/metrics"
	"gossipmia/internal/mia"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "miaeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("miaeval", flag.ContinueOnError)
	corpus := fs.String("corpus", "cifar10", "corpus: cifar10, cifar100, fashionmnist, purchase100")
	trainN := fs.Int("train", 64, "training-set (member) size")
	testN := fs.Int("test", 128, "non-member set size")
	hidden := fs.Int("hidden", 64, "hidden layer width")
	epochs := fs.Int("epochs", 50, "total training epochs")
	every := fs.Int("every", 5, "report the attack every this many epochs")
	lr := fs.Float64("lr", 0.05, "learning rate")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := tensor.NewRNG(*seed)
	gen, err := data.NewGenerator(data.CorpusName(*corpus), rng)
	if err != nil {
		return err
	}
	nd := data.NodeData{
		Train: gen.Sample(*trainN, rng),
		Test:  gen.Sample(*testN, rng),
	}
	model, err := nn.NewMLP([]int{gen.Dim(), *hidden, gen.Classes()}, rng)
	if err != nil {
		return err
	}
	tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: *lr, Momentum: 0.9, WeightDecay: 5e-4}), 16, 1)

	fmt.Printf("MPE attack on a %s-like model (train=%d, non-members=%d)\n",
		*corpus, *trainN, *testN)
	fmt.Printf("%6s %9s %9s %9s %9s %9s\n",
		"epoch", "trainAcc", "testAcc", "genErr", "miaAcc", "tpr@1%")
	for e := 1; e <= *epochs; e++ {
		if _, err := tr.RunEpochs(nd.Train.X, nd.Train.Y, rng); err != nil {
			return err
		}
		if e%*every != 0 && e != *epochs {
			continue
		}
		trainAcc, err := metrics.Accuracy(model, nd.Train)
		if err != nil {
			return err
		}
		testAcc, err := metrics.Accuracy(model, nd.Test)
		if err != nil {
			return err
		}
		res, err := mia.AttackNode(model, nd)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			e, trainAcc, testAcc, trainAcc-testAcc, res.Accuracy, res.TPRAt1FPR)
	}
	return nil
}
