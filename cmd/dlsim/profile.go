package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// diagFlags is the profiling flag set shared by run and sweep:
// -cpuprofile/-memprofile/-trace mirror `go test`'s flags so the same
// pprof workflow covers CLI runs and benchmarks.
type diagFlags struct {
	cpuProfile string
	memProfile string
	traceFile  string
}

func (d *diagFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&d.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&d.memProfile, "memprofile", "", "write a pprof allocation profile (taken at exit) to this file")
	fs.StringVar(&d.traceFile, "trace", "", "write a runtime execution trace of the run to this file")
}

// start begins the requested collectors and returns a stop function
// that finishes them — flushing the CPU profile and trace, and taking
// the heap snapshot for -memprofile. stop is safe to call when nothing
// was requested.
func (d *diagFlags) start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if d.cpuProfile != "" {
		cpuF, err = os.Create(d.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	if d.traceFile != "" {
		traceF, err = os.Create(d.traceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("create -trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("start execution trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if d.memProfile == "" {
			return nil
		}
		f, err := os.Create(d.memProfile)
		if err != nil {
			return fmt.Errorf("create -memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the snapshot shows live + cumulative allocs
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return fmt.Errorf("write -memprofile: %w", err)
		}
		return nil
	}, nil
}
