package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"gossipmia/internal/faultinject"
	"gossipmia/internal/server"
	"gossipmia/internal/server/middleware"
)

// serveCmd runs the HTTP/JSON scenario service until interrupted.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	jobs := fs.Int("jobs", 1, "scenarios executing concurrently; everything else waits in the queue")
	queue := fs.Int("queue", 16, "bounded pending-queue depth; submissions beyond it get HTTP 503")
	scale := fs.String("scale", "quick", "default scale for submissions that do not set one: tiny, quick, or paper")
	tokens := fs.String("tokens", "", "bearer tokens as comma-separated token[:tenant] entries; empty disables auth")
	rate := fs.Float64("rate", 0, "per-tenant request rate limit in req/s; 0 disables")
	burst := fs.Int("burst", 10, "per-tenant rate-limit burst")
	quota := fs.Int("quota", 0, "max queued+running jobs per tenant; 0 disables")
	timeout := fs.Duration("timeout", 0, "per-request handling timeout for non-streaming endpoints; 0 disables")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	retries := fs.Int("retries", 1, "execution attempts per job; transient failures retry with backoff up to this budget")
	retryBase := fs.Duration("retry-base", 100*time.Millisecond, "base delay of the job retry backoff")
	checkpoint := fs.String("checkpoint", "", "directory for per-job checkpoint caches; retries and restarts resume from it")
	storeDir := fs.String("store", "", "embedded result store directory shared by every job's arm caches (requires -checkpoint); content-hash keys dedup arms across jobs and restarts")
	drain := fs.Duration("drain", 30*time.Second, "graceful-drain window on SIGTERM/SIGINT before running jobs are checkpointed and aborted")
	lease := fs.Duration("lease", 15*time.Second, "work-lease TTL for distributed workers; a worker that misses heartbeats this long has its arm reclaimed")
	armAttempts := fs.Int("arm-attempts", 0, "distinct workers an arm may fail on before it is contained and executed locally; 0 keeps the default (3)")
	quarantine := fs.Duration("quarantine", 0, "base quarantine cooldown for misbehaving workers; 0 keeps the default (4x the lease TTL)")
	audit := fs.Float64("audit", 0, "fraction of worker-completed arms to re-execute locally and cross-check byte-for-byte (0 disables, 1 audits everything); a divergent worker is quarantined")
	inject := fs.String("inject", "", `fault-injection spec for chaos testing, e.g. "arm-error=2,errors=3,arm-panic=5,panics=1,event-delay=10ms"`)
	logLevel := fs.String("log", "info", "log level: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := scaleByName(*scale); err != nil {
		return err
	}
	if *jobs < 1 || *queue < 1 {
		return fmt.Errorf("serve needs -jobs >= 1 and -queue >= 1")
	}
	if *lease <= 0 {
		return fmt.Errorf("serve needs -lease > 0")
	}
	if *armAttempts < 0 {
		return fmt.Errorf("serve needs -arm-attempts >= 0")
	}
	if *quarantine < 0 {
		return fmt.Errorf("serve needs -quarantine >= 0")
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("serve needs -audit in [0, 1], got %v", *audit)
	}
	if *storeDir != "" && *checkpoint == "" {
		return fmt.Errorf("-store requires -checkpoint (the store backs the per-job checkpoint caches)")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", *logLevel, err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var injector *faultinject.Injector
	if *inject != "" {
		cfg, err := faultinject.Parse(*inject)
		if err != nil {
			return fmt.Errorf("bad -inject spec: %w", err)
		}
		injector = faultinject.New(cfg)
		log.Warn("fault injection armed", "spec", *inject)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	limiter := middleware.NewLimiter(*rate, *burst)
	svc := server.New(server.Config{
		Jobs:                   *jobs,
		QueueDepth:             *queue,
		DefaultScale:           *scale,
		MaxBodyBytes:           *maxBody,
		AuthTokens:             middleware.ParseTokens(*tokens),
		RateLimit:              *rate,
		RateBurst:              *burst,
		MaxActiveJobsPerTenant: *quota,
		RequestTimeout:         *timeout,
		Retry:                  server.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryBase},
		CheckpointDir:          *checkpoint,
		StoreDir:               *storeDir,
		LeaseTTL:               *lease,
		MaxArmAttempts:         *armAttempts,
		QuarantineCooldown:     *quarantine,
		AuditFraction:          *audit,
		Fault:                  injector,
		Log:                    log,
	})
	httpSrv := &http.Server{Handler: svc}

	// The bound address line is the machine-readable contract scripts
	// parse (ci.sh starts serve on :0 and reads the port from here).
	fmt.Printf("dlsim: serving on http://%s (jobs=%d queue=%d scale=%s)\n",
		ln.Addr(), *jobs, *queue, *scale)
	log.Info("service configured",
		"auth", len(middleware.ParseTokens(*tokens)) > 0,
		"rate", limiter.String(), "quota", *quota,
		"retries", *retries, "checkpoint", *checkpoint, "store", *storeDir, "drain", *drain)

	ctx, stop := signalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting submissions (503 + Retry-After),
	// let running jobs finish inside the drain window, then checkpoint
	// and abort whatever remains. Event streams end when their jobs
	// reach a terminal status, so Shutdown completes right after.
	log.Info("draining", "window", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		log.Warn("drain window expired; running jobs checkpointed and aborted", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Info("stopped")
	return nil
}
