package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"gossipmia/internal/server"
)

// serveCmd runs the HTTP/JSON scenario service until interrupted.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	jobs := fs.Int("jobs", 1, "scenarios executing concurrently; everything else waits in the queue")
	queue := fs.Int("queue", 16, "bounded pending-queue depth; submissions beyond it get HTTP 503")
	scale := fs.String("scale", "quick", "default scale for submissions that do not set one: tiny, quick, or paper")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := scaleByName(*scale); err != nil {
		return err
	}
	if *jobs < 1 || *queue < 1 {
		return fmt.Errorf("serve needs -jobs >= 1 and -queue >= 1")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	svc := server.New(server.Config{
		Jobs:         *jobs,
		QueueDepth:   *queue,
		DefaultScale: *scale,
	})
	httpSrv := &http.Server{Handler: svc}

	// The bound address line is the machine-readable contract scripts
	// parse (ci.sh starts serve on :0 and reads the port from here).
	fmt.Printf("dlsim: serving on http://%s (jobs=%d queue=%d scale=%s)\n",
		ln.Addr(), *jobs, *queue, *scale)

	ctx, stop := signalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		svc.Close()
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dlsim: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Stop accepting, then abort jobs: in-flight event streams end when
	// their jobs reach a terminal status.
	svc.Close()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
