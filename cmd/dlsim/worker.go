package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/faultinject"
	"gossipmia/pkg/dlsim"
)

// workerCmd runs a pull-mode worker: it long-polls the service's
// /v1/work/claim endpoint, executes each claimed arm through the same
// SDK Runner a local run uses (so the uploaded records are
// byte-identical to in-process execution), heartbeats the lease while
// the arm runs, and uploads the outcome. Any number of workers may
// point at one service; the server leases each arm to exactly one of
// them at a time and reclaims arms whose worker disappears.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	serverURL := fs.String("server", "", "dlsim service base URL to pull work from (required)")
	token := fs.String("token", "", "bearer token, when the service requires auth")
	name := fs.String("name", "", "worker name for lease bookkeeping (default: host-pid)")
	parallel := fs.Int("parallel", 1, "arms this worker executes concurrently")
	workers := fs.Int("workers", 1, "goroutines inside each arm (intra-arm parallelism); results are identical for any value")
	poll := fs.Duration("poll", 15*time.Second, "claim long-poll window (the server clamps it)")
	inject := fs.String("inject", "", `fault-injection spec for chaos testing worker-side failures, e.g. "arm-error=2,errors=3,arm-panic=5,panics=1"`)
	logLevel := fs.String("log", "info", "log level: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" {
		return fmt.Errorf("worker requires -server (the dlsim service to pull work from)")
	}
	if *parallel < 1 {
		return fmt.Errorf("worker needs -parallel >= 1")
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}
	if *poll <= 0 {
		return fmt.Errorf("worker needs -poll > 0")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", *logLevel, err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var injector *faultinject.Injector
	if *inject != "" {
		cfg, err := faultinject.Parse(*inject)
		if err != nil {
			return fmt.Errorf("bad -inject spec: %w", err)
		}
		injector = faultinject.New(cfg)
		log.Warn("fault injection armed", "spec", *inject)
	}

	who := *name
	if who == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		who = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Claims and heartbeats retry on 429/503 honoring Retry-After, so a
	// draining or rate-limited server backs the fleet off instead of
	// hammering it.
	opts := []dlsim.ClientOption{dlsim.WithClientRetry(dlsim.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 250 * time.Millisecond,
	})}
	if *token != "" {
		opts = append(opts, dlsim.WithToken(*token))
	}
	client := dlsim.NewClient(*serverURL, opts...)

	ctx, stop := signalContext()
	defer stop()
	if injector != nil {
		ctx = faultinject.With(ctx, injector)
	}

	fmt.Printf("dlsim: worker %s pulling from %s (parallel=%d)\n", who, *serverURL, *parallel)
	var wg sync.WaitGroup
	for slot := 0; slot < *parallel; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			slotName := who
			if *parallel > 1 {
				slotName = fmt.Sprintf("%s/%d", who, slot)
			}
			workerLoop(ctx, client, log.With("worker", slotName), slotName, *poll, *workers)
		}(slot)
	}
	wg.Wait()
	log.Info("worker stopped")
	return nil
}

// workerLoop is one claim-execute-upload loop; -parallel runs several.
func workerLoop(ctx context.Context, client *dlsim.Client, log *slog.Logger, who string, poll time.Duration, workers int) {
	for ctx.Err() == nil {
		order, err := client.ClaimWork(ctx, who, poll)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Draining, unreachable, or overloaded even after retries:
			// back off and keep polling — the fleet outlives restarts.
			log.Warn("claim failed; backing off", "err", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Second):
			}
			continue
		}
		if order == nil { // long-poll elapsed with no work
			continue
		}
		runOrder(ctx, client, log, order, workers)
	}
}

// runOrder executes one claimed arm under its lease: a heartbeat
// goroutine renews the lease at a third of its window and cancels the
// execution if the server reports the lease gone (the arm was
// reclaimed — finishing it would only produce a stale duplicate).
func runOrder(ctx context.Context, client *dlsim.Client, log *slog.Logger, order *dlsim.WorkOrder, workers int) {
	log = log.With("lease", order.Lease, "job", order.Job, "arm", order.Label)
	log.Info("claimed arm", "spec", order.Spec, "scale", order.Scale)

	armCtx, cancelArm := context.WithCancel(ctx)
	defer cancelArm()
	hbDone := make(chan struct{})
	expired := false
	interval := time.Duration(order.LeaseSeconds * float64(time.Second) / 3)
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-armCtx.Done():
				return
			case <-t.C:
			}
			if _, err := client.HeartbeatWork(armCtx, order.Lease); err != nil {
				if errors.Is(err, dlsim.ErrLeaseExpired) {
					log.Warn("lease expired; abandoning arm")
					expired = true
					cancelArm()
					return
				}
				if armCtx.Err() == nil {
					log.Warn("heartbeat failed; lease may lapse", "err", err)
				}
			}
		}
	}()

	start := time.Now()
	res, runErr := executeOrder(armCtx, order, workers)
	cancelArm()
	<-hbDone
	elapsed := time.Since(start)

	if expired || ctx.Err() != nil {
		// Reclaimed mid-run or the worker is shutting down; either way
		// the server redistributes the arm, so there is nothing to send.
		return
	}
	result := dlsim.WorkResult{ElapsedSeconds: elapsed.Seconds()}
	if runErr != nil {
		result.Error = runErr.Error()
		result.Transient = experiment.IsTransient(runErr)
		log.Warn("arm failed", "err", runErr, "transient", result.Transient)
	} else {
		result.Arm = res
		log.Info("arm done", "rounds", len(res.Records), "elapsed", elapsed.Round(time.Millisecond))
	}
	// Uploading on a fresh context: ctx may die between the check above
	// and here, and the bytes are already computed — deliver them.
	upCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	receipt, err := client.CompleteWork(upCtx, order.Lease, result)
	switch {
	case err != nil:
		log.Warn("result upload failed; arm will be reclaimed", "err", err)
	case receipt.Stale:
		log.Info("upload was a stale duplicate (already resolved); discarded")
	}
}

// executeOrder reproduces the arm exactly as the server would run it
// in-process: a single-arm spec through the SDK Runner at the order's
// scale and resolved seed. Determinism makes the execution idempotent,
// which is what lease reclaim and duplicate uploads rely on.
func executeOrder(ctx context.Context, order *dlsim.WorkOrder, workers int) (*dlsim.ArmResult, error) {
	runner, err := dlsim.NewRunner(
		dlsim.WithScale(order.Scale),
		dlsim.WithSeed(order.Seed),
		dlsim.WithWorkers(workers),
	)
	if err != nil {
		return nil, err
	}
	sp := &dlsim.Spec{Name: order.Spec, Arms: []dlsim.Arm{order.Arm}}
	res, err := runner.Run(ctx, sp)
	if err != nil {
		return nil, err
	}
	if len(res.Arms) != 1 {
		return nil, fmt.Errorf("worker: order %q produced %d arms, want 1", order.Label, len(res.Arms))
	}
	arm := res.Arms[0]
	if arm.Label != order.Label {
		return nil, fmt.Errorf("worker: order %q produced arm %q", order.Label, arm.Label)
	}
	return &arm, nil
}
