package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/faultinject"
	"gossipmia/pkg/dlsim"
)

// workerCmd runs a pull-mode worker: it registers with the service,
// long-polls the /v1/work/claim endpoint, executes each claimed arm
// through the same SDK Runner a local run uses (so the uploaded
// records are byte-identical to in-process execution), heartbeats the
// lease while the arm runs, and uploads the outcome with its content
// checksum. Any number of workers may point at one service; the
// server leases each arm to exactly one of them at a time and
// reclaims arms whose worker disappears.
//
// On SIGINT/SIGTERM the worker drains: it stops claiming new arms,
// finishes and uploads the arms it already holds, deregisters, and
// exits — so a clean shutdown never forces the server to wait out a
// lease expiry.
func workerCmd(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	serverURL := fs.String("server", "", "dlsim service base URL to pull work from (required)")
	token := fs.String("token", "", "bearer token, when the service requires auth")
	name := fs.String("name", "", "worker name for lease bookkeeping (default: host-pid)")
	parallel := fs.Int("parallel", 1, "arms this worker executes concurrently")
	workers := fs.Int("workers", 1, "goroutines inside each arm (intra-arm parallelism); results are identical for any value")
	poll := fs.Duration("poll", 15*time.Second, "claim long-poll window (the server clamps it)")
	inject := fs.String("inject", "", `fault-injection spec for chaos testing worker-side failures, e.g. "arm-error=2,errors=3,upload-corrupt=1,corruptions=2"`)
	logLevel := fs.String("log", "info", "log level: debug, info, warn, or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" {
		return fmt.Errorf("worker requires -server (the dlsim service to pull work from)")
	}
	if *parallel < 1 {
		return fmt.Errorf("worker needs -parallel >= 1")
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}
	if *poll <= 0 {
		return fmt.Errorf("worker needs -poll > 0")
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		return fmt.Errorf("bad -log level %q: %w", *logLevel, err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var injector *faultinject.Injector
	if *inject != "" {
		cfg, err := faultinject.Parse(*inject)
		if err != nil {
			return fmt.Errorf("bad -inject spec: %w", err)
		}
		injector = faultinject.New(cfg)
		log.Warn("fault injection armed", "spec", *inject)
	}

	who := *name
	if who == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		who = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	// Claims and heartbeats retry on 429/503 honoring Retry-After, so a
	// draining or rate-limited server backs the fleet off instead of
	// hammering it.
	opts := []dlsim.ClientOption{dlsim.WithClientRetry(dlsim.RetryPolicy{
		MaxAttempts: 4, BaseDelay: 250 * time.Millisecond,
	})}
	if *token != "" {
		opts = append(opts, dlsim.WithToken(*token))
	}
	client := dlsim.NewClient(*serverURL, opts...)

	ctx, stop := signalContext()
	defer stop()
	if injector != nil {
		ctx = faultinject.With(ctx, injector)
	}

	fmt.Printf("dlsim: worker %s pulling from %s (parallel=%d)\n", who, *serverURL, *parallel)
	var wg sync.WaitGroup
	for slot := 0; slot < *parallel; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			slotName := who
			if *parallel > 1 {
				slotName = fmt.Sprintf("%s/%d", who, slot)
			}
			workerLoop(ctx, client, log.With("worker", slotName), slotName, *poll, *workers)
		}(slot)
	}
	wg.Wait()
	log.Info("worker stopped")
	return nil
}

// workerLoop is one claim-execute-upload loop; -parallel runs several,
// each registered under its own slot name. On context cancellation the
// loop stops claiming (any in-flight arm is finished and uploaded by
// runOrder before control returns here) and deregisters on the way
// out, so the dispatcher drops the slot from the live set immediately
// instead of waiting out the liveness TTL.
func workerLoop(ctx context.Context, client *dlsim.Client, log *slog.Logger, who string, poll time.Duration, workers int) {
	if err := client.RegisterWorker(ctx, who); err != nil {
		if ctx.Err() != nil {
			return
		}
		// Registration is a courtesy — the first claim registers
		// implicitly — so a failed handshake only warns.
		log.Warn("register failed; continuing (claims register implicitly)", "err", err)
	}
	defer func() {
		// The loop context is typically already cancelled here; the
		// goodbye goes out on its own short deadline.
		byeCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := client.DeregisterWorker(byeCtx, who); err != nil {
			log.Warn("deregister failed; server will forget this worker after its TTL", "err", err)
		} else {
			log.Info("deregistered")
		}
	}()
	for ctx.Err() == nil {
		order, err := client.ClaimWork(ctx, who, poll)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, dlsim.ErrWorkerQuarantined) {
				// The server benched this worker. Honor the cooldown
				// hint rather than hammering the claim endpoint with
				// requests that can only answer 403.
				wait := 5 * time.Second
				var ae *dlsim.APIError
				if errors.As(err, &ae) && ae.RetryAfter > 0 {
					wait = ae.RetryAfter
				}
				log.Warn("worker is quarantined; backing off", "wait", wait)
				select {
				case <-ctx.Done():
					return
				case <-time.After(wait):
				}
				continue
			}
			// Draining, unreachable, or overloaded even after retries:
			// back off and keep polling — the fleet outlives restarts.
			log.Warn("claim failed; backing off", "err", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(2 * time.Second):
			}
			continue
		}
		if order == nil { // long-poll elapsed with no work
			continue
		}
		runOrder(ctx, client, log, order, workers)
	}
}

// runOrder executes one claimed arm under its lease: a heartbeat
// goroutine renews the lease at a third of its window and cancels the
// execution if the server reports the lease gone (the arm was
// reclaimed — finishing it would only produce a stale duplicate).
//
// Worker shutdown (SIGTERM) does NOT cancel the arm: the execution
// context is detached from the loop context, so a draining worker
// finishes what it holds and uploads the result before exiting. Only
// a lease expiry abandons the arm mid-run.
func runOrder(ctx context.Context, client *dlsim.Client, log *slog.Logger, order *dlsim.WorkOrder, workers int) {
	log = log.With("lease", order.Lease, "job", order.Job, "arm", order.Label)
	log.Info("claimed arm", "spec", order.Spec, "scale", order.Scale)

	// WithoutCancel keeps context values (the fault injector) while
	// severing the arm from shutdown; cancelArm remains the lease
	// expiry's kill switch.
	armCtx, cancelArm := context.WithCancel(context.WithoutCancel(ctx))
	defer cancelArm()
	hbDone := make(chan struct{})
	expired := false
	interval := time.Duration(order.LeaseSeconds * float64(time.Second) / 3)
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-armCtx.Done():
				return
			case <-t.C:
			}
			if _, err := client.HeartbeatWork(armCtx, order.Lease); err != nil {
				if errors.Is(err, dlsim.ErrLeaseExpired) {
					log.Warn("lease expired; abandoning arm")
					expired = true
					cancelArm()
					return
				}
				if armCtx.Err() == nil {
					log.Warn("heartbeat failed; lease may lapse", "err", err)
				}
			}
		}
	}()

	start := time.Now()
	res, runErr := dlsim.ExecuteOrder(armCtx, order, workers)
	cancelArm()
	<-hbDone
	elapsed := time.Since(start)

	if expired {
		// Reclaimed mid-run: the server has redistributed the arm, so
		// there is nothing worth sending.
		return
	}
	result := dlsim.WorkResult{ElapsedSeconds: elapsed.Seconds()}
	if runErr != nil {
		result.Error = runErr.Error()
		result.Transient = experiment.IsTransient(runErr)
		log.Warn("arm failed", "err", runErr, "transient", result.Transient)
	} else {
		result.Arm = res
		// The checksum covers the bytes this worker actually computed;
		// the server re-hashes what it receives and rejects on any
		// difference. Injected corruption below deliberately tampers
		// AFTER the sum is taken — exactly the lie the audit catches.
		result.Sum = res.Checksum()
		if inj := faultinject.FromContext(ctx); inj != nil && inj.UploadCorrupt() {
			result.Arm.BytesSent++
			log.Warn("fault injection: corrupting upload payload")
		}
		log.Info("arm done", "rounds", len(res.Records), "elapsed", elapsed.Round(time.Millisecond))
	}
	// Uploading on a fresh context: the loop ctx may already be
	// cancelled by shutdown, and the bytes are computed — deliver them.
	upCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
	defer cancel()
	receipt, err := client.CompleteWork(upCtx, order.Lease, result)
	switch {
	case err != nil:
		log.Warn("result upload failed; arm will be reclaimed", "err", err)
	case receipt.Stale:
		log.Info("upload was a stale duplicate (already resolved); discarded")
	}
}
