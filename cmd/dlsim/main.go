// Command dlsim runs the paper's experiments (Figures 2–9), the
// extension scenarios, and arbitrary declarative scenario specs at a
// chosen scale — locally, as a persisted resumable sweep, or as a
// client of a dlsim service. It is a thin shell over the public
// pkg/dlsim SDK.
//
// Usage:
//
//	dlsim run -figure 3 -scale quick           # one figure, local
//	dlsim run -figure 2 -workers 4             # parallel arms, identical output
//	dlsim run -spec sweep.json -scale tiny     # declarative spec, local
//	dlsim run -spec sweep.json -remote http://127.0.0.1:8080
//	                                           # submit to a service, stream events
//	dlsim sweep -spec sweep.json -out runs/s   # persisted: manifest + caches + streams
//	dlsim sweep -spec sweep.json -out runs/s -resume
//	dlsim sweep -spec big.json -out runs/b -store
//	                                           # arm caches in one embedded store
//	dlsim serve -addr 127.0.0.1:8080           # HTTP/JSON job service
//	dlsim serve -checkpoint cp -store cp/store # jobs share one result store
//	dlsim worker -server http://127.0.0.1:8080 # pull-mode worker: claim arms,
//	                                           # execute, upload (fleet-scalable)
//	dlsim list                                 # the scenario catalog
//	dlsim list -jobs -addr URL -limit 20       # a service's job table, paged
//	dlsim list -store runs/b/store -figure f2  # cached arms of a result store
//	dlsim version                              # build + spec-schema identity
//
// The pre-subcommand flat invocation (dlsim -figure 3, dlsim -spec
// f.json -out d -resume, dlsim -list) keeps working and maps onto
// run/sweep/list.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/metrics"
	"gossipmia/pkg/dlsim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

// run dispatches a subcommand; an invocation that starts with a flag
// (or is empty) takes the legacy flat path, which covers run and sweep
// under the original flag set.
func run(args []string) error {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, rest := args[0], args[1:]
		switch cmd {
		case "run", "sweep":
			return runAndSweep(cmd, rest)
		case "serve":
			return serveCmd(rest)
		case "worker":
			return workerCmd(rest)
		case "list":
			return listCmd(rest)
		case "version":
			return versionCmd(rest)
		case "help":
			printUsage(os.Stdout)
			return nil
		default:
			return fmt.Errorf("unknown command %q (want run, sweep, serve, worker, list, or version)", cmd)
		}
	}
	return runAndSweep("", args)
}

func printUsage(w *os.File) {
	fmt.Fprintln(w, strings.TrimSpace(`
usage: dlsim <command> [flags]

commands:
  run      run a figure/scenario or a declarative spec (locally or against -remote)
  sweep    run a spec persisted to a result directory (-out), resumable (-resume);
           -store keeps arm caches in one embedded indexed store
  serve    expose the engine as an HTTP/JSON job service
  worker   pull arm work orders from a service (-server URL) and execute them;
           any number of workers form a fleet sharing the service's result store
  list     print the scenario catalog; -jobs lists a service's job table,
           -store DIR lists a result store's cached arms (both page with
           -limit/-offset)
  version  print build, Go, and spec-schema identity

Legacy flat flags (dlsim -figure 3, dlsim -spec f.json -out d) still work.
Run dlsim <command> -h for each command's flags.`))
}

// signalContext is the root context of CLI runs: Ctrl-C cancels it,
// which stops engine workers at the next arm/round boundary (leaving
// any -out directory's completed arm caches intact for -resume).
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// runAndSweep implements run, sweep, and the legacy flat invocation
// (cmd ""). All three share one flag set so every pre-subcommand flag
// keeps working in its new home; sweep additionally requires -spec and
// -out.
func runAndSweep(cmd string, args []string) (retErr error) {
	name := cmd
	if name == "" {
		name = "dlsim"
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var diag diagFlags
	diag.register(fs)
	figure := fs.String("figure", "all", `figure or scenario to run (see dlsim list): 2..9, "latency", "churn", "dynamics", "tables", "attacks", or "all"`)
	specPath := fs.String("spec", "", "run a declarative scenario spec (JSON file) instead of a catalog figure")
	outDir := fs.String("out", "", "result directory: manifest, per-arm caches, streamed events, results.csv (requires -spec)")
	resume := fs.Bool("resume", false, "with -spec and -out: skip arms whose cached results already exist in the out directory")
	useStore := fs.Bool("store", false, "with -out: keep per-arm caches in an embedded indexed result store under OUT/store instead of one JSON file per arm (same bytes, one log; resume scans the store once instead of opening a file per arm)")
	events := fs.String("events", "jsonl", `with -out: per-arm event stream format, "jsonl", "csv", or "none"`)
	remote := fs.String("remote", "", "submit the run to a dlsim service at this base URL instead of executing locally (requires -spec)")
	list := fs.Bool("list", false, "print the available figures/scenarios and exit")
	scaleName := fs.String("scale", "quick", "experiment scale: tiny, quick, or paper")
	seed := fs.Int64("seed", 0, "override the scale's base seed (0 keeps the preset)")
	csv := fs.Bool("csv", false, "also print per-round CSV series for every arm")
	plotFlag := fs.Bool("plot", false, "also render ASCII tradeoff scatter plots")
	repeats := fs.Int("repeats", 0, "replicate a single figure over N seeds and report bootstrap CIs")
	workers := fs.Int("workers", 0, "worker goroutines for arms, intra-arm tick execution, per-node evaluation, and tiled GEMM (0 = one per CPU, 1 = serial); results are identical for any value")
	transport := fs.String("transport", "", `network transport overlay: "instant" (default), "latency", or "lossy"`)
	latency := fs.Float64("latency", 0, "mean per-link delay in ticks (implies -transport latency; jitter is 30% of the mean)")
	churn := fs.Float64("churn", 0, "fraction of nodes that leave at 1/3 of the run and rejoin at 2/3")
	drop := fs.Float64("drop", 0, "probability that a transmission is lost (implies -transport lossy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	if *list {
		printCatalog(os.Stdout)
		return nil
	}

	stopDiag, err := diag.start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopDiag(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	sc.Net, err = netOverlay(*transport, *latency, *churn, *drop)
	if err != nil {
		return err
	}

	if cmd == "sweep" && (*specPath == "" || *outDir == "") {
		return fmt.Errorf("sweep requires -spec and -out")
	}

	ctx, stop := signalContext()
	defer stop()

	if *specPath != "" {
		if *figure != "all" {
			return fmt.Errorf("-spec and -figure are mutually exclusive (got -figure %s)", *figure)
		}
		if *repeats > 1 {
			return fmt.Errorf("-repeats does not apply to -spec runs")
		}
		// Specs declare their networks per arm; letting the overlay
		// reach a spec's control arms (e.g. the latency=0 baselines of
		// a sweep) would silently degrade them, so the combination is
		// rejected — same policy as the built-in latency/churn scenarios.
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags cannot be combined with -spec: declare the network per arm in the spec file")
		}
		if *remote != "" {
			if *outDir != "" || *resume || *useStore {
				return fmt.Errorf("-out, -resume, and -store are local-run flags and cannot be combined with -remote")
			}
			return runRemote(ctx, *remote, *specPath, *scaleName, *seed, *workers, *csv, *plotFlag)
		}
		return runSpecFile(ctx, *specPath, *scaleName, *seed, *workers, *outDir, *resume, *useStore, *events, *csv, *plotFlag)
	}
	if *remote != "" {
		return fmt.Errorf("-remote requires -spec (submit a spec file to the service)")
	}
	if *outDir != "" || *resume || *useStore {
		return fmt.Errorf("-out, -resume, and -store require -spec")
	}

	switch *figure {
	case "all":
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags cannot be combined with -figure all: the latency and churn scenarios pin their own networks per arm")
		}
		for _, e := range experiment.Catalog() {
			if err := runEntry(ctx, e, sc, *csv, *plotFlag); err != nil {
				return fmt.Errorf("figure %s: %w", e.Name, err)
			}
		}
		return nil
	default:
		e, ok := experiment.CatalogEntryByName(*figure)
		if !ok {
			return fmt.Errorf("unknown figure %q (run dlsim list for the catalog)", *figure)
		}
		if e.RejectsOverlay && sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags have no effect on -figure %s", e.Name)
		}
		if *repeats > 1 && e.Runnable() {
			rep, err := experiment.Replicate(func(rsc experiment.Scale) (*experiment.FigureResult, error) {
				return e.Run(ctx, rsc)
			}, sc, *repeats, 0.95)
			if err != nil {
				return err
			}
			fmt.Println(rep.Table())
			return nil
		}
		return runEntry(ctx, e, sc, *csv, *plotFlag)
	}
}

// newRunner assembles the SDK runner the CLI's local spec runs go
// through.
func newRunner(scaleName string, seed int64, workers int) (*dlsim.Runner, error) {
	opts := []dlsim.Option{dlsim.WithScale(scaleName), dlsim.WithWorkers(workers)}
	if seed != 0 {
		opts = append(opts, dlsim.WithSeed(seed))
	}
	return dlsim.NewRunner(opts...)
}

// runSpecFile loads and runs a declarative spec through the SDK,
// optionally persisting the run (manifest, caches, event streams) to a
// result directory — with -store, per-arm caches go to the embedded
// result store under outDir/store instead of one file per arm.
func runSpecFile(ctx context.Context, path, scaleName string, seed int64, workers int, outDir string, resume, useStore bool, events string, csv, renderPlot bool) error {
	if resume && outDir == "" {
		return fmt.Errorf("-resume requires -out")
	}
	if useStore && outDir == "" {
		return fmt.Errorf("-store requires -out")
	}
	sp, err := dlsim.LoadSpec(path)
	if err != nil {
		return err
	}
	runner, err := newRunner(scaleName, seed, workers)
	if err != nil {
		return err
	}
	var res *dlsim.Result
	if outDir == "" {
		res, err = runner.Run(ctx, sp)
	} else {
		opts := dlsim.DirOptions{OutDir: outDir, Resume: resume, Events: events}
		if useStore {
			opts.StoreDir = filepath.Join(outDir, "store")
		}
		var report *dlsim.RunReport
		res, report, err = runner.RunDir(ctx, sp, opts)
		if err == nil {
			cached := 0
			for _, a := range report.Arms {
				if a.Cached {
					cached++
				}
			}
			fmt.Printf("spec %s (hash %s): %d arms (%d from cache) -> %s\n",
				sp.Name, report.SpecHash[:12], len(report.Arms), cached, outDir)
		}
	}
	if err != nil {
		return err
	}
	return printResult(res, csv, renderPlot)
}

// runRemote submits a spec to a dlsim service, streams its round
// records as they are produced, and prints the final table.
func runRemote(ctx context.Context, base, path, scaleName string, seed int64, workers int, csv, renderPlot bool) error {
	sp, err := dlsim.LoadSpec(path)
	if err != nil {
		return err
	}
	client := dlsim.NewClient(base)
	job, err := client.Submit(ctx, dlsim.JobRequest{Spec: sp, Scale: scaleName, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("job %s (%s, key %s)\n", job.ID, job.Status, job.Key[:12])
	// Ctrl-C must not strand the job server-side: it would keep holding
	// one of the service's worker slots. Best-effort cancel on a fresh
	// context (ctx is already dead at that point).
	defer func() {
		if ctx.Err() == nil {
			return
		}
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if _, cerr := client.Cancel(cctx, job.ID); cerr == nil {
			fmt.Fprintf(os.Stderr, "dlsim: cancelled job %s\n", job.ID)
		} else {
			fmt.Fprintf(os.Stderr, "dlsim: could not cancel job %s: %v\n", job.ID, cerr)
		}
	}()
	if err := client.Events(ctx, job.ID, func(ev dlsim.Event) error {
		fmt.Printf("event %s round=%d acc=%.4f mia=%.4f\n", ev.Arm, ev.Round, ev.TestAcc, ev.MIAAcc)
		return nil
	}); err != nil {
		return err
	}
	job, err = client.Job(ctx, job.ID)
	if err != nil {
		return err
	}
	switch job.Status {
	case dlsim.StatusDone:
		return printResult(job.Result, csv, renderPlot)
	case dlsim.StatusCancelled:
		return fmt.Errorf("job %s was cancelled", job.ID)
	default:
		return fmt.Errorf("job %s %s: %s", job.ID, job.Status, job.Error)
	}
}

// runEntry runs one catalog entry and prints its output. Text entries
// render directly; spec-backed entries run through the generic
// executor under ctx.
func runEntry(ctx context.Context, e experiment.CatalogEntry, sc experiment.Scale, csv, renderPlot bool) error {
	if !e.Runnable() {
		out, err := e.Text(sc)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	fig, err := e.Run(ctx, sc)
	if err != nil {
		return err
	}
	return printFigure(fig, csv, renderPlot)
}

// printFigure prints an engine-side figure (catalog entries, which may
// need the internal plot renderer).
func printFigure(fig *experiment.FigureResult, csv, renderPlot bool) error {
	fmt.Println(fig.Table())
	if renderPlot {
		p, err := fig.TradeoffPlot()
		if err != nil {
			return fmt.Errorf("plot: %w", err)
		}
		fmt.Println(p)
	}
	if csv {
		for _, arm := range fig.Arms {
			fmt.Printf("# %s\n%s\n", arm.Label, arm.Series.CSV())
		}
	}
	return nil
}

// printResult prints an SDK result (spec runs, local or remote).
func printResult(res *dlsim.Result, csv, renderPlot bool) error {
	fmt.Println(res.Table())
	if renderPlot {
		p, err := figureOf(res).TradeoffPlot()
		if err != nil {
			return fmt.Errorf("plot: %w", err)
		}
		fmt.Println(p)
	}
	if csv {
		for _, arm := range res.Arms {
			fmt.Printf("# %s\nround,test_acc,mia_acc,tpr_at_1fpr,gen_error\n", arm.Label)
			for _, r := range arm.Records {
				fmt.Printf("%d,%.6f,%.6f,%.6f,%.6f\n", r.Round, r.TestAcc, r.MIAAcc, r.TPRAt1FPR, r.GenError)
			}
			fmt.Println()
		}
	}
	return nil
}

// figureOf converts an SDK result back into the engine's figure shape
// so presentation (plots, palettes, axis labels) has exactly one
// implementation regardless of where the result came from.
func figureOf(res *dlsim.Result) *experiment.FigureResult {
	fig := &experiment.FigureResult{Name: res.Name, Caption: res.Caption, Notes: res.Notes}
	for _, arm := range res.Arms {
		s := &metrics.Series{Label: arm.Label}
		for _, r := range arm.Records {
			s.Append(metrics.RoundRecord{
				Round: r.Round, TestAcc: r.TestAcc, MIAAcc: r.MIAAcc,
				TPRAt1FPR: r.TPRAt1FPR, GenError: r.GenError,
			})
		}
		fig.Arms = append(fig.Arms, experiment.Arm{
			Label: arm.Label, Series: s,
			MessagesSent: arm.MessagesSent, BytesSent: arm.BytesSent,
			RealizedEpsilon: arm.RealizedEpsilon, NoiseMultiplier: arm.NoiseMultiplier,
		})
	}
	return fig
}

// listCmd prints the catalog (the local build's or a remote service's),
// a service's job table (-jobs, paged with -limit/-offset), or the
// cached arms of an embedded result store (-store DIR, filtered by
// -figure and paged the same way).
func listCmd(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	addr := fs.String("addr", "", "query a dlsim service at this base URL instead of the local build")
	jobsFlag := fs.Bool("jobs", false, "list the jobs of the service at -addr, newest first")
	storeDir := fs.String("store", "", "list the cached arms of the embedded result store at this directory")
	figure := fs.String("figure", "", "with -store: only arms of this spec/figure name")
	limit := fs.Int("limit", 0, "with -jobs or -store: page size (0 = everything)")
	offset := fs.Int("offset", 0, "with -jobs or -store: rows to skip before the page")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *limit < 0 || *offset < 0 {
		return fmt.Errorf("-limit and -offset must be >= 0")
	}
	switch {
	case *jobsFlag && *storeDir != "":
		return fmt.Errorf("-jobs and -store are mutually exclusive")
	case *jobsFlag:
		if *addr == "" {
			return fmt.Errorf("-jobs requires -addr (the service to list)")
		}
		return listJobs(*addr, *limit, *offset)
	case *storeDir != "":
		if *addr != "" {
			return fmt.Errorf("-store lists a local store and cannot be combined with -addr")
		}
		page, total, err := experiment.ListStoreArms(*storeDir, *figure, *limit, *offset)
		if err != nil {
			return err
		}
		fmt.Print(experiment.FormatStoreArms(page, total, *offset))
		return nil
	case *figure != "" || *limit != 0 || *offset != 0:
		return fmt.Errorf("-figure, -limit, and -offset require -jobs or -store")
	}
	if *addr == "" {
		printCatalog(os.Stdout)
		return nil
	}
	ctx, stop := signalContext()
	defer stop()
	entries, err := dlsim.NewClient(*addr).Catalog(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("figures and scenarios at %s:\n", *addr)
	for _, e := range entries {
		kind := " "
		if !e.Runnable {
			kind = "*"
		}
		fmt.Printf("  %-9s %s%s\n", e.Name, kind, e.Desc)
	}
	fmt.Println("entries marked * are text-only and cannot run as service jobs")
	return nil
}

// listJobs prints one window of a service's job table, then the
// service's /v1/statz counters (queue depth, worker fleet, cache).
func listJobs(addr string, limit, offset int) error {
	ctx, stop := signalContext()
	defer stop()
	client := dlsim.NewClient(addr)
	page, err := client.JobsPage(ctx, limit, offset)
	if err != nil {
		return err
	}
	fmt.Printf("%d jobs at %s", page.Total, addr)
	if len(page.Jobs) < page.Total {
		fmt.Printf(" (showing %d-%d)", offset+1, offset+len(page.Jobs))
	}
	fmt.Println()
	for _, j := range page.Jobs {
		line := fmt.Sprintf("  %s\t%-9s %s (scale %s, seed %d)", j.ID, j.Status, j.Spec, j.Scale, j.Seed)
		if j.Error != "" {
			line += " error: " + j.Error
		}
		fmt.Println(line)
	}
	st, err := client.Statz(ctx)
	if err != nil {
		// Older services have no /v1/statz; the job table above is
		// still the answer, so degrade quietly.
		return nil
	}
	fmt.Printf("service %s: %d queued, %d running\n", st.Status, st.Queued, st.Running)
	fmt.Printf("work: queue=%d leases=%d workers=%d claims=%d completes=%d reclaims=%d stale=%d arms(remote/local)=%d/%d\n",
		st.Work.QueueDepth, st.Work.ActiveLeases, st.Work.Workers,
		st.Work.Claims, st.Work.Completes, st.Work.Reclaims, st.Work.StaleUploads,
		st.Work.RemoteArms, st.Work.LocalArms)
	if st.Work.Poisoned+st.Work.Rejected+st.Work.Quarantines+st.Work.Audits > 0 {
		fmt.Printf("health: poisoned=%d rejected=%d quarantines=%d audits=%d/%d failed\n",
			st.Work.Poisoned, st.Work.Rejected, st.Work.Quarantines,
			st.Work.AuditsFailed, st.Work.Audits)
	}
	if len(st.Work.PerWorker) > 0 {
		fmt.Printf("%-24s %-12s %6s %7s %9s %8s %6s %10s %11s\n",
			"worker", "state", "score", "leases", "completes", "expiries", "errors", "mismatches", "quarantines")
		for _, row := range st.Work.PerWorker {
			fmt.Printf("%-24s %-12s %6.2f %7d %9d %8d %6d %10d %11d\n",
				row.Name, row.State, row.Score, row.Leases, row.Completes,
				row.Expiries, row.Errors, row.Mismatches, row.Quarantines)
		}
	}
	fmt.Printf("cache: %d hits / %d misses (%.1f%% hit rate)\n",
		st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRate)
	return nil
}

// versionCmd prints the build identity (module, Go, spec schema).
func versionCmd(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	addr := fs.String("addr", "", "query a dlsim service at this base URL instead of the local build")
	if err := fs.Parse(args); err != nil {
		return err
	}
	v := dlsim.Version()
	if *addr != "" {
		ctx, stop := signalContext()
		defer stop()
		remote, err := dlsim.NewClient(*addr).Version(ctx)
		if err != nil {
			return err
		}
		v = *remote
	}
	fmt.Printf("dlsim %s\nmodule: %s\ngo: %s\nspec-schema: %s\n",
		v.Version, v.Module, v.GoVersion, v.SpecSchemaHash)
	return nil
}

// netOverlay folds the network flags into the experiment overlay,
// inferring the transport kind from the strongest flag given.
func netOverlay(transport string, latency, churn, drop float64) (experiment.NetOverlay, error) {
	o := experiment.NetOverlay{
		Transport:     transport,
		LatencyTicks:  latency,
		LatencyJitter: latency * 0.3,
		DropProb:      drop,
		ChurnFraction: churn,
	}
	// An explicit -transport instant with no latency knobs means the
	// same as omitting the flag; normalize so the zero-overlay checks
	// (tables, scenarios, all) treat them identically. With latency
	// knobs it stays "instant" and Validate rejects the contradiction.
	if o.Transport == "instant" && latency == 0 {
		o.Transport = ""
	}
	if o.Transport == "" {
		switch {
		case drop > 0:
			o.Transport = "lossy"
		case latency > 0:
			o.Transport = "latency"
		}
	}
	if err := o.Validate(); err != nil {
		return experiment.NetOverlay{}, err
	}
	return o, nil
}

func printCatalog(w *os.File) {
	fmt.Fprintln(w, "figures and scenarios (-figure NAME):")
	for _, e := range experiment.Catalog() {
		fmt.Fprintf(w, "  %-9s %s\n", e.Name, e.Desc)
	}
	fmt.Fprintln(w, "  all       every figure and scenario above, in catalog order")
	fmt.Fprintln(w, strings.TrimSpace(`
network overlay flags (apply to any figure): -transport, -latency, -churn, -drop
declarative specs: -spec file.json [-out dir [-resume]] (see examples/specs/)
service mode: dlsim serve; submit with dlsim run -spec file.json -remote URL`))
}

func scaleByName(name string) (experiment.Scale, error) {
	return experiment.ScaleByName(name)
}
