// Command dlsim runs the paper's experiments (Figures 2–9) at a chosen
// scale and prints the resulting summary tables.
//
// Usage:
//
//	dlsim -figure 3 -scale quick
//	dlsim -figure all -scale tiny
//	dlsim -figure 9 -scale quick -seed 7 -csv
//	dlsim -figure 2 -scale tiny -workers 4   # parallel arms, identical output
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"gossipmia/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlsim", flag.ContinueOnError)
	figure := fs.String("figure", "all", `figure to reproduce: 2..9, "tables", "attacks", or "all"`)
	scaleName := fs.String("scale", "quick", "experiment scale: tiny, quick, or paper")
	seed := fs.Int64("seed", 0, "override the scale's base seed (0 keeps the preset)")
	csv := fs.Bool("csv", false, "also print per-round CSV series for every arm")
	plotFlag := fs.Bool("plot", false, "also render ASCII tradeoff scatter plots")
	repeats := fs.Int("repeats", 0, "replicate a single figure over N seeds and report bootstrap CIs")
	workers := fs.Int("workers", 0, "worker goroutines for arms and per-node evaluation (0 = one per CPU, 1 = serial); results are identical for any value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers

	runners := map[int]func(experiment.Scale) (*experiment.FigureResult, error){
		2: experiment.RunFigure2,
		3: experiment.RunFigure3,
		4: experiment.RunFigure4,
		5: experiment.RunFigure5,
		6: experiment.RunFigure6,
		7: experiment.RunFigure7,
		8: experiment.RunFigure8,
		9: experiment.RunFigure9,
	}

	printTables := func() {
		fmt.Println(experiment.DatasetCatalogTable())
		fmt.Println(experiment.TrainingCatalogTable())
	}

	switch *figure {
	case "tables":
		printTables()
		return nil
	case "attacks":
		cmp, err := experiment.RunAttackComparison(sc)
		if err != nil {
			return err
		}
		fmt.Println(cmp.Table())
		return nil
	case "all":
		printTables()
		for n := 2; n <= 9; n++ {
			if err := runFigure(runners[n], sc, *csv, *plotFlag); err != nil {
				return fmt.Errorf("figure %d: %w", n, err)
			}
		}
		cmp, err := experiment.RunAttackComparison(sc)
		if err != nil {
			return fmt.Errorf("attack comparison: %w", err)
		}
		fmt.Println(cmp.Table())
		return nil
	default:
		n, err := strconv.Atoi(*figure)
		if err != nil || runners[n] == nil {
			return fmt.Errorf("unknown figure %q (want 2..9, tables, attacks, or all)", *figure)
		}
		if *repeats > 1 {
			rep, err := experiment.Replicate(runners[n], sc, *repeats, 0.95)
			if err != nil {
				return err
			}
			fmt.Println(rep.Table())
			return nil
		}
		return runFigure(runners[n], sc, *csv, *plotFlag)
	}
}

func runFigure(runner func(experiment.Scale) (*experiment.FigureResult, error), sc experiment.Scale, csv, renderPlot bool) error {
	fig, err := runner(sc)
	if err != nil {
		return err
	}
	fmt.Println(fig.Table())
	if renderPlot {
		p, err := fig.TradeoffPlot()
		if err != nil {
			return fmt.Errorf("plot: %w", err)
		}
		fmt.Println(p)
	}
	if csv {
		for _, arm := range fig.Arms {
			fmt.Printf("# %s\n%s\n", arm.Label, arm.Series.CSV())
		}
	}
	return nil
}

func scaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "tiny":
		return experiment.TinyScale(), nil
	case "quick":
		return experiment.QuickScale(), nil
	case "paper":
		return experiment.PaperScale(), nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (want tiny, quick, or paper)", name)
	}
}
