// Command dlsim runs the paper's experiments (Figures 2–9), the
// extension scenarios, and arbitrary declarative scenario specs at a
// chosen scale, printing the resulting summary tables and optionally
// streaming every run into a result directory.
//
// Usage:
//
//	dlsim -list
//	dlsim -figure 3 -scale quick
//	dlsim -figure all -scale tiny
//	dlsim -figure 9 -scale quick -seed 7 -csv
//	dlsim -figure 2 -scale tiny -workers 4         # parallel arms, identical output
//	dlsim -figure latency -scale quick             # staleness sweep, SAMO vs Base
//	dlsim -figure churn -scale quick               # churn + partition recovery
//	dlsim -figure 2 -transport latency -latency 50 # any figure under a latency net
//	dlsim -figure 8 -churn 0.3 -repeats 5          # churned net, bootstrap CIs
//	dlsim -spec examples/specs/latency_churn_dp.json -scale tiny
//	dlsim -spec sweep.json -out runs/sweep         # manifest + JSONL streams
//	dlsim -spec sweep.json -out runs/sweep -resume # skip completed arms
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gossipmia/internal/experiment"
	"gossipmia/internal/spec"
)

// scenario is one runnable entry of the catalog: a paper figure, an
// extension scenario, or a pseudo-figure (tables, attacks), with the
// one-line description -list prints. The catalog is the single source
// of truth: exactly the names it lists are the names -figure accepts
// (plus "all", which runs the whole catalog in order).
type scenario struct {
	name string
	desc string
	// fig runs a figure/scenario and prints its table (nil for text
	// entries).
	fig func(experiment.Scale) (*experiment.FigureResult, error)
	// text renders a pseudo-figure (tables, attacks) directly.
	text func(experiment.Scale) (string, error)
	// rejectsOverlay marks entries a network overlay cannot apply to.
	rejectsOverlay bool
}

// catalog returns the ordered figure/scenario registry, in the order
// -figure all runs them.
func catalog() []scenario {
	return []scenario{
		{name: "tables", desc: "Tables 1 and 2: dataset characteristics and training configuration",
			text: func(experiment.Scale) (string, error) {
				return experiment.DatasetCatalogTable() + "\n" + experiment.TrainingCatalogTable(), nil
			}, rejectsOverlay: true},
		{name: "2", desc: "RQ1: SAMO vs Base Gossip, 5-regular static graph, all corpora", fig: experiment.RunFigure2},
		{name: "3", desc: "RQ2: static vs dynamic topology, 2-regular graph (SAMO)", fig: experiment.RunFigure3},
		{name: "4", desc: "RQ3: canary worst-case audit (max TPR@1%FPR), static vs dynamic", fig: experiment.RunFigure4},
		{name: "5", desc: "RQ4: view-size sweep and communication cost (CIFAR-10-like)", fig: experiment.RunFigure5},
		{name: "6", desc: "RQ5: Dirichlet non-IID sweep (Purchase100-like)", fig: experiment.RunFigure6},
		{name: "7", desc: "RQ6: MIA vulnerability vs generalization error, all corpora", fig: experiment.RunFigure7},
		{name: "8", desc: "RQ6: per-round MIA accuracy and generalization error", fig: experiment.RunFigure8},
		{name: "9", desc: "RQ7: DP-SGD privacy-budget sweep (epsilon)", fig: experiment.RunFigure9},
		{name: "latency", desc: "network scenario: per-link latency / staleness sweep, SAMO vs Base", fig: experiment.RunLatencySweep},
		{name: "churn", desc: "network scenario: node churn and healing partition recovery", fig: experiment.RunChurnRecovery},
		{name: "dynamics", desc: "extension: static vs PeerSwap vs Cyclon peer sampling", fig: experiment.RunDynamicsComparison},
		{name: "attacks", desc: "extension: attack score-function comparison on final models",
			text: func(sc experiment.Scale) (string, error) {
				cmp, err := experiment.RunAttackComparison(sc)
				if err != nil {
					return "", err
				}
				return cmp.Table(), nil
			}},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlsim", flag.ContinueOnError)
	figure := fs.String("figure", "all", `figure or scenario to run (see -list): 2..9, "latency", "churn", "dynamics", "tables", "attacks", or "all"`)
	specPath := fs.String("spec", "", "run a declarative scenario spec (JSON file) instead of a catalog figure")
	outDir := fs.String("out", "", "result directory for -spec runs: manifest, per-arm caches, streamed events, results.csv")
	resume := fs.Bool("resume", false, "with -spec and -out: skip arms whose cached results already exist in the out directory")
	list := fs.Bool("list", false, "print the available figures/scenarios and exit")
	scaleName := fs.String("scale", "quick", "experiment scale: tiny, quick, or paper")
	seed := fs.Int64("seed", 0, "override the scale's base seed (0 keeps the preset)")
	csv := fs.Bool("csv", false, "also print per-round CSV series for every arm")
	plotFlag := fs.Bool("plot", false, "also render ASCII tradeoff scatter plots")
	repeats := fs.Int("repeats", 0, "replicate a single figure over N seeds and report bootstrap CIs")
	workers := fs.Int("workers", 0, "worker goroutines for arms and per-node evaluation (0 = one per CPU, 1 = serial); results are identical for any value")
	transport := fs.String("transport", "", `network transport overlay: "instant" (default), "latency", or "lossy"`)
	latency := fs.Float64("latency", 0, "mean per-link delay in ticks (implies -transport latency; jitter is 30% of the mean)")
	churn := fs.Float64("churn", 0, "fraction of nodes that leave at 1/3 of the run and rejoin at 2/3")
	drop := fs.Float64("drop", 0, "probability that a transmission is lost (implies -transport lossy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	if *list {
		printCatalog(os.Stdout)
		return nil
	}

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	sc.Net, err = netOverlay(*transport, *latency, *churn, *drop)
	if err != nil {
		return err
	}

	if *specPath != "" {
		if *figure != "all" {
			return fmt.Errorf("-spec and -figure are mutually exclusive (got -figure %s)", *figure)
		}
		if *repeats > 1 {
			return fmt.Errorf("-repeats does not apply to -spec runs")
		}
		// Specs declare their networks per arm; letting the overlay
		// reach a spec's control arms (e.g. the latency=0 baselines of
		// a sweep) would silently degrade them, so the combination is
		// rejected — same policy as the built-in latency/churn scenarios.
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags cannot be combined with -spec: declare the network per arm in the spec file")
		}
		return runSpecFile(*specPath, sc, *outDir, *resume, *csv, *plotFlag)
	}
	if *outDir != "" || *resume {
		return fmt.Errorf("-out and -resume require -spec")
	}

	switch *figure {
	case "all":
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags cannot be combined with -figure all: the latency and churn scenarios pin their own networks per arm")
		}
		for _, s := range catalog() {
			if err := runEntry(s, sc, *csv, *plotFlag); err != nil {
				return fmt.Errorf("figure %s: %w", s.name, err)
			}
		}
		return nil
	default:
		var sel *scenario
		for _, s := range catalog() {
			if s.name == *figure {
				sel = &s
				break
			}
		}
		if sel == nil {
			return fmt.Errorf("unknown figure %q (run dlsim -list for the catalog)", *figure)
		}
		if sel.rejectsOverlay && sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags have no effect on -figure %s", sel.name)
		}
		if *repeats > 1 && sel.fig != nil {
			rep, err := experiment.Replicate(sel.fig, sc, *repeats, 0.95)
			if err != nil {
				return err
			}
			fmt.Println(rep.Table())
			return nil
		}
		return runEntry(*sel, sc, *csv, *plotFlag)
	}
}

// runSpecFile loads and runs a declarative spec, optionally persisting
// the run (manifest, caches, event streams) to a result directory.
func runSpecFile(path string, sc experiment.Scale, outDir string, resume, csv, renderPlot bool) error {
	if resume && outDir == "" {
		return fmt.Errorf("-resume requires -out")
	}
	sp, err := spec.Load(path)
	if err != nil {
		return err
	}
	var fig *experiment.FigureResult
	if outDir == "" {
		fig, err = experiment.RunSpec(sp, sc)
	} else {
		var man *experiment.SpecManifest
		fig, man, err = experiment.RunSpecDir(sp, sc, experiment.SpecRunOptions{OutDir: outDir, Resume: resume})
		if err == nil {
			cached := 0
			for _, a := range man.Arms {
				if a.Cached {
					cached++
				}
			}
			fmt.Printf("spec %s (hash %s): %d arms (%d from cache) -> %s\n",
				sp.Name, man.SpecHash[:12], len(man.Arms), cached, outDir)
		}
	}
	if err != nil {
		return err
	}
	return printFigure(fig, csv, renderPlot)
}

// netOverlay folds the network flags into the experiment overlay,
// inferring the transport kind from the strongest flag given.
func netOverlay(transport string, latency, churn, drop float64) (experiment.NetOverlay, error) {
	o := experiment.NetOverlay{
		Transport:     transport,
		LatencyTicks:  latency,
		LatencyJitter: latency * 0.3,
		DropProb:      drop,
		ChurnFraction: churn,
	}
	// An explicit -transport instant with no latency knobs means the
	// same as omitting the flag; normalize so the zero-overlay checks
	// (tables, scenarios, all) treat them identically. With latency
	// knobs it stays "instant" and Validate rejects the contradiction.
	if o.Transport == "instant" && latency == 0 {
		o.Transport = ""
	}
	if o.Transport == "" {
		switch {
		case drop > 0:
			o.Transport = "lossy"
		case latency > 0:
			o.Transport = "latency"
		}
	}
	if err := o.Validate(); err != nil {
		return experiment.NetOverlay{}, err
	}
	return o, nil
}

func printCatalog(w *os.File) {
	fmt.Fprintln(w, "figures and scenarios (-figure NAME):")
	for _, s := range catalog() {
		fmt.Fprintf(w, "  %-9s %s\n", s.name, s.desc)
	}
	fmt.Fprintln(w, "  all       every figure and scenario above, in catalog order")
	fmt.Fprintln(w, strings.TrimSpace(`
network overlay flags (apply to any figure): -transport, -latency, -churn, -drop
declarative specs: -spec file.json [-out dir [-resume]] (see examples/specs/)`))
}

// runEntry runs one catalog entry and prints its output.
func runEntry(s scenario, sc experiment.Scale, csv, renderPlot bool) error {
	if s.text != nil {
		out, err := s.text(sc)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	fig, err := s.fig(sc)
	if err != nil {
		return err
	}
	return printFigure(fig, csv, renderPlot)
}

func printFigure(fig *experiment.FigureResult, csv, renderPlot bool) error {
	fmt.Println(fig.Table())
	if renderPlot {
		p, err := fig.TradeoffPlot()
		if err != nil {
			return fmt.Errorf("plot: %w", err)
		}
		fmt.Println(p)
	}
	if csv {
		for _, arm := range fig.Arms {
			fmt.Printf("# %s\n%s\n", arm.Label, arm.Series.CSV())
		}
	}
	return nil
}

func scaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "tiny":
		return experiment.TinyScale(), nil
	case "quick":
		return experiment.QuickScale(), nil
	case "paper":
		return experiment.PaperScale(), nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (want tiny, quick, or paper)", name)
	}
}
