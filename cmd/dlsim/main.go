// Command dlsim runs the paper's experiments (Figures 2–9) and the
// extension scenarios at a chosen scale and prints the resulting
// summary tables.
//
// Usage:
//
//	dlsim -list
//	dlsim -figure 3 -scale quick
//	dlsim -figure all -scale tiny
//	dlsim -figure 9 -scale quick -seed 7 -csv
//	dlsim -figure 2 -scale tiny -workers 4         # parallel arms, identical output
//	dlsim -figure latency -scale quick             # staleness sweep, SAMO vs Base
//	dlsim -figure churn -scale quick               # churn + partition recovery
//	dlsim -figure 2 -transport latency -latency 50 # any figure under a latency net
//	dlsim -figure 8 -churn 0.3 -repeats 5          # churned net, bootstrap CIs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gossipmia/internal/experiment"
)

// scenario is one runnable entry of the catalog: a paper figure or an
// extension scenario, with the one-line description -list prints.
type scenario struct {
	name string
	desc string
	run  func(experiment.Scale) (*experiment.FigureResult, error)
}

// catalog returns the ordered figure/scenario registry.
func catalog() []scenario {
	return []scenario{
		{"2", "RQ1: SAMO vs Base Gossip, 5-regular static graph, all corpora", experiment.RunFigure2},
		{"3", "RQ2: static vs dynamic topology, 2-regular graph (SAMO)", experiment.RunFigure3},
		{"4", "RQ3: canary worst-case audit (max TPR@1%FPR), static vs dynamic", experiment.RunFigure4},
		{"5", "RQ4: view-size sweep and communication cost (CIFAR-10-like)", experiment.RunFigure5},
		{"6", "RQ5: Dirichlet non-IID sweep (Purchase100-like)", experiment.RunFigure6},
		{"7", "RQ6: MIA vulnerability vs generalization error, all corpora", experiment.RunFigure7},
		{"8", "RQ6: per-round MIA accuracy and generalization error", experiment.RunFigure8},
		{"9", "RQ7: DP-SGD privacy-budget sweep (epsilon)", experiment.RunFigure9},
		{"latency", "network scenario: per-link latency / staleness sweep, SAMO vs Base", experiment.RunLatencySweep},
		{"churn", "network scenario: node churn and healing partition recovery", experiment.RunChurnRecovery},
		{"dynamics", "extension: static vs PeerSwap vs Cyclon peer sampling", experiment.RunDynamicsComparison},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dlsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlsim", flag.ContinueOnError)
	figure := fs.String("figure", "all", `figure or scenario to run (see -list): 2..9, "latency", "churn", "dynamics", "tables", "attacks", or "all"`)
	list := fs.Bool("list", false, "print the available figures/scenarios and exit")
	scaleName := fs.String("scale", "quick", "experiment scale: tiny, quick, or paper")
	seed := fs.Int64("seed", 0, "override the scale's base seed (0 keeps the preset)")
	csv := fs.Bool("csv", false, "also print per-round CSV series for every arm")
	plotFlag := fs.Bool("plot", false, "also render ASCII tradeoff scatter plots")
	repeats := fs.Int("repeats", 0, "replicate a single figure over N seeds and report bootstrap CIs")
	workers := fs.Int("workers", 0, "worker goroutines for arms and per-node evaluation (0 = one per CPU, 1 = serial); results are identical for any value")
	transport := fs.String("transport", "", `network transport overlay: "instant" (default), "latency", or "lossy"`)
	latency := fs.Float64("latency", 0, "mean per-link delay in ticks (implies -transport latency; jitter is 30% of the mean)")
	churn := fs.Float64("churn", 0, "fraction of nodes that leave at 1/3 of the run and rejoin at 2/3")
	drop := fs.Float64("drop", 0, "probability that a transmission is lost (implies -transport lossy)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", *workers)
	}

	if *list {
		printCatalog(os.Stdout)
		return nil
	}

	sc, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers
	sc.Net, err = netOverlay(*transport, *latency, *churn, *drop)
	if err != nil {
		return err
	}

	printTables := func() {
		fmt.Println(experiment.DatasetCatalogTable())
		fmt.Println(experiment.TrainingCatalogTable())
	}

	switch *figure {
	case "tables":
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags have no effect on -figure tables")
		}
		printTables()
		return nil
	case "attacks":
		cmp, err := experiment.RunAttackComparison(sc)
		if err != nil {
			return err
		}
		fmt.Println(cmp.Table())
		return nil
	case "all":
		if sc.Net != (experiment.NetOverlay{}) {
			return fmt.Errorf("network overlay flags cannot be combined with -figure all: the latency and churn scenarios pin their own networks per arm")
		}
		printTables()
		for _, s := range catalog() {
			if err := runFigure(s.run, sc, *csv, *plotFlag); err != nil {
				return fmt.Errorf("figure %s: %w", s.name, err)
			}
		}
		cmp, err := experiment.RunAttackComparison(sc)
		if err != nil {
			return fmt.Errorf("attack comparison: %w", err)
		}
		fmt.Println(cmp.Table())
		return nil
	default:
		var sel *scenario
		for _, s := range catalog() {
			if s.name == *figure {
				sel = &s
				break
			}
		}
		if sel == nil {
			return fmt.Errorf("unknown figure %q (run dlsim -list for the catalog)", *figure)
		}
		if *repeats > 1 {
			rep, err := experiment.Replicate(sel.run, sc, *repeats, 0.95)
			if err != nil {
				return err
			}
			fmt.Println(rep.Table())
			return nil
		}
		return runFigure(sel.run, sc, *csv, *plotFlag)
	}
}

// netOverlay folds the network flags into the experiment overlay,
// inferring the transport kind from the strongest flag given.
func netOverlay(transport string, latency, churn, drop float64) (experiment.NetOverlay, error) {
	o := experiment.NetOverlay{
		Transport:     transport,
		LatencyTicks:  latency,
		LatencyJitter: latency * 0.3,
		DropProb:      drop,
		ChurnFraction: churn,
	}
	// An explicit -transport instant with no latency knobs means the
	// same as omitting the flag; normalize so the zero-overlay checks
	// (tables, scenarios, all) treat them identically. With latency
	// knobs it stays "instant" and Validate rejects the contradiction.
	if o.Transport == "instant" && latency == 0 {
		o.Transport = ""
	}
	if o.Transport == "" {
		switch {
		case drop > 0:
			o.Transport = "lossy"
		case latency > 0:
			o.Transport = "latency"
		}
	}
	if err := o.Validate(); err != nil {
		return experiment.NetOverlay{}, err
	}
	return o, nil
}

func printCatalog(w *os.File) {
	fmt.Fprintln(w, "figures and scenarios (-figure NAME):")
	for _, s := range catalog() {
		fmt.Fprintf(w, "  %-9s %s\n", s.name, s.desc)
	}
	fmt.Fprintln(w, "  tables    Tables 1 and 2: dataset characteristics and training configuration")
	fmt.Fprintln(w, "  attacks   extension: attack score-function comparison on final models")
	fmt.Fprintln(w, "  all       every figure and scenario above, plus the tables")
	fmt.Fprintln(w, strings.TrimSpace(`
network overlay flags (apply to any figure): -transport, -latency, -churn, -drop`))
}

func runFigure(runner func(experiment.Scale) (*experiment.FigureResult, error), sc experiment.Scale, csv, renderPlot bool) error {
	fig, err := runner(sc)
	if err != nil {
		return err
	}
	fmt.Println(fig.Table())
	if renderPlot {
		p, err := fig.TradeoffPlot()
		if err != nil {
			return fmt.Errorf("plot: %w", err)
		}
		fmt.Println(p)
	}
	if csv {
		for _, arm := range fig.Arms {
			fmt.Printf("# %s\n%s\n", arm.Label, arm.Series.CSV())
		}
	}
	return nil
}

func scaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "tiny":
		return experiment.TinyScale(), nil
	case "quick":
		return experiment.QuickScale(), nil
	case "paper":
		return experiment.PaperScale(), nil
	default:
		return experiment.Scale{}, fmt.Errorf("unknown scale %q (want tiny, quick, or paper)", name)
	}
}
