package main

import (
	"strings"
	"testing"

	"gossipmia/internal/experiment"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "quick", "paper"} {
		sc, err := scaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s scale invalid: %v", name, err)
		}
	}
	if _, err := scaleByName("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-figure", "tables"}); err != nil {
		t.Fatalf("tables: %v", err)
	}
}

func TestRunSingleFigureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-figure", "8", "-scale", "tiny", "-csv"}); err != nil {
		t.Fatalf("figure 8: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-figure", "99"}); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("unknown figure error = %v", err)
	}
	if err := run([]string{"-scale", "nope", "-figure", "tables"}); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("unknown scale error = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestSeedOverride(t *testing.T) {
	sc, err := scaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed == 777 {
		t.Fatal("test assumes tiny seed != 777")
	}
	_ = experiment.TinyScale() // keep the import honest
}
