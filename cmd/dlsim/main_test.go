package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipmia/internal/experiment"
	"gossipmia/internal/spec"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "quick", "paper"} {
		sc, err := scaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s scale invalid: %v", name, err)
		}
	}
	if _, err := scaleByName("nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunTables(t *testing.T) {
	if err := run([]string{"-figure", "tables"}); err != nil {
		t.Fatalf("tables: %v", err)
	}
}

func TestRunSingleFigureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-figure", "8", "-scale", "tiny", "-csv"}); err != nil {
		t.Fatalf("figure 8: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, figure := range []string{"99", "1", "10", "latency-sweep", ""} {
		if err := run([]string{"-figure", figure}); err == nil || !strings.Contains(err.Error(), "unknown figure") {
			t.Fatalf("figure %q error = %v", figure, err)
		}
	}
	if err := run([]string{"-scale", "nope", "-figure", "tables"}); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("unknown scale error = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
	if err := run([]string{"-figure", "2", "-transport", "pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if err := run([]string{"-figure", "2", "-churn", "1.5"}); err == nil {
		t.Fatal("churn fraction >= 1 accepted")
	}
	if err := run([]string{"-figure", "2", "-drop", "-0.1"}); err == nil {
		t.Fatal("negative drop accepted")
	}
	// An explicit instant transport with latency parameters would
	// silently run the zero-delay network; it must error instead.
	if err := run([]string{"-figure", "2", "-transport", "instant", "-latency", "50"}); err == nil {
		t.Fatal("instant+latency accepted")
	}
	// Scenarios pin their own networks: overlay flags must not be
	// silently ignored, neither per scenario nor under -figure all.
	if err := run([]string{"-figure", "latency", "-scale", "tiny", "-latency", "200"}); err == nil {
		t.Fatal("latency scenario accepted an overlay")
	}
	if err := run([]string{"-figure", "all", "-latency", "50"}); err == nil {
		t.Fatal("-figure all accepted an overlay")
	}
	if err := run([]string{"-figure", "tables", "-latency", "50"}); err == nil {
		t.Fatal("-figure tables accepted an overlay")
	}
	// But an explicit default transport is not an overlay.
	if err := run([]string{"-figure", "tables", "-transport", "instant"}); err != nil {
		t.Fatalf("-figure tables -transport instant rejected: %v", err)
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list subcommand: %v", err)
	}
	names := map[string]bool{}
	for _, e := range experiment.Catalog() {
		if (e.Spec == nil) == (e.Text == nil) || e.Desc == "" {
			t.Fatalf("catalog entry %q incomplete", e.Name)
		}
		if names[e.Name] {
			t.Fatalf("duplicate catalog entry %q", e.Name)
		}
		names[e.Name] = true
	}
	// The catalog is the single source of truth for -list AND -figure:
	// every name -figure accepts (other than "all") must be listed,
	// including the tables/attacks pseudo-figures the old listing omitted.
	for _, want := range []string{"2", "9", "latency", "churn", "dynamics", "tables", "attacks"} {
		if !names[want] {
			t.Fatalf("catalog missing %q", want)
		}
	}
}

// TestCatalogNamesAllRunnable proves listed and accepted names match:
// every catalog name dispatches (the unknown-figure error is reserved
// for names outside the catalog). The cheap pseudo-figure actually
// runs; simulation entries are resolved but not executed.
func TestCatalogNamesAllRunnable(t *testing.T) {
	if err := run([]string{"-figure", "tables"}); err != nil {
		t.Fatalf("tables: %v", err)
	}
	for _, e := range experiment.Catalog() {
		// Dispatch with a bad scale: a listed name must get past name
		// resolution (and fail, if at all, on the scale), never report
		// "unknown figure".
		err := run([]string{"-figure", e.Name, "-scale", "nope"})
		if err == nil || strings.Contains(err.Error(), "unknown figure") {
			t.Fatalf("catalog name %q not accepted by -figure: %v", e.Name, err)
		}
	}
}

// TestSubcommandDispatch pins the subcommand surface: known commands
// parse their own flags, unknown commands error, and the legacy flat
// flags keep working under run and sweep.
func TestSubcommandDispatch(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command error = %v", err)
	}
	if err := run([]string{"run", "-figure", "tables"}); err != nil {
		t.Fatalf("run -figure tables: %v", err)
	}
	if err := run([]string{"version"}); err != nil {
		t.Fatalf("version: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
	// sweep demands a spec and an out directory.
	if err := run([]string{"sweep", "-scale", "tiny"}); err == nil || !strings.Contains(err.Error(), "sweep requires") {
		t.Fatalf("sweep without -spec/-out: %v", err)
	}
	if err := run([]string{"sweep", "-spec", "x.json"}); err == nil || !strings.Contains(err.Error(), "sweep requires") {
		t.Fatalf("sweep without -out: %v", err)
	}
	// serve validates its flags without binding when they are invalid.
	if err := run([]string{"serve", "-scale", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("serve bad scale: %v", err)
	}
	if err := run([]string{"serve", "-jobs", "0"}); err == nil {
		t.Fatal("serve -jobs 0 accepted")
	}
	// -remote is a -spec companion and excludes local-run persistence.
	if err := run([]string{"run", "-remote", "http://x"}); err == nil || !strings.Contains(err.Error(), "-remote requires -spec") {
		t.Fatalf("-remote without -spec: %v", err)
	}
	if err := run([]string{"run", "-spec", "x.json", "-remote", "http://x", "-out", "d"}); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined with -remote") {
		t.Fatalf("-remote with -out: %v", err)
	}
	// Trailing positional arguments are rejected, not ignored.
	if err := run([]string{"run", "-figure", "tables", "extra"}); err == nil ||
		!strings.Contains(err.Error(), "unexpected argument") {
		t.Fatalf("trailing argument: %v", err)
	}
}

// TestSweepSubcommandTiny proves the sweep subcommand is the persisted
// spec run: artifacts land in -out and -resume serves from cache.
func TestSweepSubcommandTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	path := writeTestSpec(t)
	out := filepath.Join(t.TempDir(), "run")
	if err := run([]string{"sweep", "-spec", path, "-scale", "tiny", "-out", out}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "manifest.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	if err := run([]string{"sweep", "-spec", path, "-scale", "tiny", "-out", out, "-resume"}); err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
}

func TestNetOverlayFlagInference(t *testing.T) {
	o, err := netOverlay("", 40, 0, 0)
	if err != nil || o.Transport != "latency" || o.LatencyTicks != 40 || o.LatencyJitter != 12 {
		t.Fatalf("latency inference = %+v, %v", o, err)
	}
	o, err = netOverlay("", 0, 0, 0.2)
	if err != nil || o.Transport != "lossy" {
		t.Fatalf("lossy inference = %+v, %v", o, err)
	}
	o, err = netOverlay("", 0, 0.3, 0)
	if err != nil || o.Transport != "" || o.ChurnFraction != 0.3 {
		t.Fatalf("churn-only overlay = %+v, %v", o, err)
	}
	// Explicit -transport instant with no other knobs is the default.
	o, err = netOverlay("instant", 0, 0, 0)
	if err != nil || o != (experiment.NetOverlay{}) {
		t.Fatalf("explicit instant not normalized: %+v, %v", o, err)
	}
	if _, err := netOverlay("latency", -1, 0, 0); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestRunScenarioTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	if err := run([]string{"-figure", "churn", "-scale", "tiny"}); err != nil {
		t.Fatalf("churn scenario: %v", err)
	}
	if err := run([]string{"-figure", "8", "-scale", "tiny", "-transport", "latency", "-latency", "20", "-churn", "0.3"}); err != nil {
		t.Fatalf("figure 8 under network overlay: %v", err)
	}
}

// writeTestSpec writes a minimal one-arm spec file and returns its path.
func writeTestSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	raw := `{
		"name": "cli smoke",
		"arms": [
			{"label": "cifar10/samo/k=2", "corpus": "cifar10", "protocol": "samo", "viewSize": 2}
		]
	}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpecFlagValidation(t *testing.T) {
	if err := run([]string{"-out", "somewhere"}); err == nil {
		t.Fatal("-out without -spec accepted")
	}
	if err := run([]string{"-resume"}); err == nil {
		t.Fatal("-resume without -spec accepted")
	}
	if err := run([]string{"-spec", "x.json", "-resume"}); err == nil {
		t.Fatal("-resume without -out accepted")
	}
	if err := run([]string{"-spec", "x.json", "-figure", "2"}); err == nil {
		t.Fatal("-spec with -figure accepted")
	}
	if err := run([]string{"-spec", "x.json", "-repeats", "3"}); err == nil {
		t.Fatal("-spec with -repeats accepted")
	}
	// Specs declare networks per arm; an overlay would silently degrade
	// a sweep's control arms.
	if err := run([]string{"-spec", "x.json", "-latency", "50"}); err == nil ||
		!strings.Contains(err.Error(), "overlay") {
		t.Fatalf("-spec with a network overlay accepted: %v", err)
	}
	if err := run([]string{"-spec", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := run([]string{"-spec", "x.json", "-store"}); err == nil ||
		!strings.Contains(err.Error(), "-store requires -out") {
		t.Fatalf("-store without -out: %v", err)
	}
	if err := run([]string{"-store"}); err == nil {
		t.Fatal("-store without -spec accepted")
	}
	if err := run([]string{"run", "-spec", "x.json", "-remote", "http://x", "-store"}); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined with -remote") {
		t.Fatalf("-store with -remote: %v", err)
	}
	if err := run([]string{"-spec", writeTestSpec(t), "-out", filepath.Join(t.TempDir(), "o"), "-events", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown event format") {
		t.Fatalf("bad -events value: %v", err)
	}
}

// TestListFlagValidation pins the list subcommand's new modes: the
// paging and store flags demand their mode flag, and the modes are
// mutually exclusive.
func TestListFlagValidation(t *testing.T) {
	if err := run([]string{"list", "-jobs"}); err == nil ||
		!strings.Contains(err.Error(), "-jobs requires -addr") {
		t.Fatalf("-jobs without -addr: %v", err)
	}
	if err := run([]string{"list", "-jobs", "-store", "d", "-addr", "http://x"}); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("-jobs with -store: %v", err)
	}
	if err := run([]string{"list", "-store", "d", "-addr", "http://x"}); err == nil ||
		!strings.Contains(err.Error(), "cannot be combined with -addr") {
		t.Fatalf("-store with -addr: %v", err)
	}
	if err := run([]string{"list", "-limit", "5"}); err == nil ||
		!strings.Contains(err.Error(), "require -jobs or -store") {
		t.Fatalf("-limit without a mode: %v", err)
	}
	if err := run([]string{"list", "-jobs", "-addr", "http://x", "-limit", "-1"}); err == nil {
		t.Fatal("negative -limit accepted")
	}
	if err := run([]string{"list", "-store", filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("missing store directory accepted")
	}
	// serve's -store is a -checkpoint companion.
	if err := run([]string{"serve", "-store", "d"}); err == nil ||
		!strings.Contains(err.Error(), "-store requires -checkpoint") {
		t.Fatalf("serve -store without -checkpoint: %v", err)
	}
}

// TestSweepStoreTiny: a -store sweep produces the same results.csv as
// the file backend, keeps no per-arm files, resumes from the store, and
// its arms are visible through dlsim list -store.
func TestSweepStoreTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	path := writeTestSpec(t)
	fileOut := filepath.Join(t.TempDir(), "file")
	storeOut := filepath.Join(t.TempDir(), "store")
	if err := run([]string{"sweep", "-spec", path, "-scale", "tiny", "-out", fileOut}); err != nil {
		t.Fatalf("file sweep: %v", err)
	}
	if err := run([]string{"sweep", "-spec", path, "-scale", "tiny", "-out", storeOut, "-store"}); err != nil {
		t.Fatalf("store sweep: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(fileOut, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(storeOut, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("store-backed results.csv differs:\n%s\nvs\n%s", got, want)
	}
	if _, err := os.Stat(filepath.Join(storeOut, "arms")); !os.IsNotExist(err) {
		t.Fatalf("store sweep left an arms directory (stat err %v)", err)
	}
	if err := run([]string{"sweep", "-spec", path, "-scale", "tiny", "-out", storeOut, "-store", "-resume"}); err != nil {
		t.Fatalf("store resume: %v", err)
	}
	if err := run([]string{"list", "-store", filepath.Join(storeOut, "store")}); err != nil {
		t.Fatalf("list -store: %v", err)
	}
	if err := run([]string{"list", "-store", filepath.Join(storeOut, "store"), "-figure", "cli smoke", "-limit", "1"}); err != nil {
		t.Fatalf("list -store paged: %v", err)
	}
}

func TestRunSpecFileTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	path := writeTestSpec(t)
	// -plot must keep working for spec runs (it renders from the SDK
	// result's records, not the internal figure).
	if err := run([]string{"-spec", path, "-scale", "tiny", "-plot"}); err != nil {
		t.Fatalf("spec run: %v", err)
	}
	out := filepath.Join(t.TempDir(), "run")
	if err := run([]string{"-spec", path, "-scale", "tiny", "-out", out}); err != nil {
		t.Fatalf("spec run with -out: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "manifest.json")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "results.csv")); err != nil {
		t.Fatalf("results.csv missing: %v", err)
	}
	// A second invocation with -resume serves everything from cache.
	if err := run([]string{"-spec", path, "-scale", "tiny", "-out", out, "-resume"}); err != nil {
		t.Fatalf("resumed spec run: %v", err)
	}
}

// TestExampleSpecsParse keeps the committed example specs loadable: a
// spec that no longer parses or validates is a broken example.
func TestExampleSpecsParse(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found under examples/specs/")
	}
	for _, path := range paths {
		sp, err := spec.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		arms, err := sp.ExpandArms()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(arms) == 0 {
			t.Fatalf("%s expands to no arms", path)
		}
	}
}

func TestSeedOverride(t *testing.T) {
	sc, err := scaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed == 777 {
		t.Fatal("test assumes tiny seed != 777")
	}
	_ = experiment.TinyScale() // keep the import honest
}
