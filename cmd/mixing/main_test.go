package main

import (
	"strings"
	"testing"
)

func TestRunTinyOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the spectral analysis")
	}
	if err := run([]string{"-scale", "tiny", "-n", "12", "-iters", "8", "-runs", "2", "-seed", "3"}); err != nil {
		t.Fatalf("mixing run: %v", err)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("unknown scale error = %v", err)
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
