// Command mixing reproduces the Section 4 spectral analysis (Figure 10):
// λ₂(W*) of accumulated gossip mixing products for static and dynamic
// k-regular graphs.
//
// Usage:
//
//	mixing -n 150 -iters 125 -runs 50
//	mixing -scale quick
package main

import (
	"flag"
	"fmt"
	"os"

	"gossipmia/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mixing:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mixing", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "base scale: tiny, quick, or paper")
	n := fs.Int("n", 0, "override network size")
	iters := fs.Int("iters", 0, "override number of mixing iterations")
	runs := fs.Int("runs", 0, "override number of averaging runs")
	seed := fs.Int64("seed", 0, "override base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sc experiment.Scale
	switch *scaleName {
	case "tiny":
		sc = experiment.TinyScale()
	case "quick":
		sc = experiment.QuickScale()
	case "paper":
		sc = experiment.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *n > 0 {
		sc.SpectralN = *n
	}
	if *iters > 0 {
		sc.SpectralIters = *iters
	}
	if *runs > 0 {
		sc.SpectralRuns = *runs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	res, err := experiment.RunFigure10(sc)
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	return nil
}
