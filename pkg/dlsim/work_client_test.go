package dlsim

// Work-claim client behavior against scripted fake servers: retry with
// Retry-After honor on congested claims, the 204 no-work contract, and
// the 410 -> ErrLeaseExpired mapping.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClaimRetriesWithRetryAfter: a draining/overloaded service answers
// claims with 503 + Retry-After; the client waits at least the hinted
// delay and retries until the claim lands.
func TestClaimRetriesWithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var sawWait atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ClaimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker != "w1" {
			t.Errorf("bad claim body: %v (worker %q)", err, req.Worker)
		}
		sawWait.Store(int64(req.WaitSeconds))
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		json.NewEncoder(w).Encode(WorkOrder{
			Lease: "L00000001-abcd", Spec: "s", Label: "a", Key: "abcd", Scale: "tiny", Seed: 1,
			LeaseSeconds: 15,
		})
	}))
	defer ts.Close()

	client := NewClient(ts.URL, WithClientRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}))
	start := time.Now()
	order, err := client.ClaimWork(context.Background(), "w1", 7*time.Second)
	if err != nil {
		t.Fatalf("claim after retries = %v", err)
	}
	if order == nil || order.Lease != "L00000001-abcd" || order.LeaseSeconds != 15 {
		t.Fatalf("order = %+v", order)
	}
	if calls.Load() != 3 {
		t.Fatalf("claim took %d calls, want 3", calls.Load())
	}
	if sawWait.Load() != 7 {
		t.Fatalf("claim sent waitSeconds=%d, want 7", sawWait.Load())
	}
	// Two 503s, each hinting Retry-After: 1 — far above the microsecond
	// backoff, so honoring the hint is observable in wall-clock time.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("claim returned after %v; Retry-After hints were not honored", elapsed)
	}
}

// TestClaimNoWork: 204 No Content means the long-poll elapsed idle —
// the client reports (nil, nil), not an error.
func TestClaimNoWork(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	order, err := NewClient(ts.URL).ClaimWork(context.Background(), "w1", time.Second)
	if err != nil || order != nil {
		t.Fatalf("idle claim = (%+v, %v), want (nil, nil)", order, err)
	}
	if _, err := NewClient(ts.URL).ClaimWork(context.Background(), "", time.Second); err == nil {
		t.Fatal("claim with empty worker name must fail client-side")
	}
}

// TestClaimQuarantined: 403 Forbidden maps to ErrWorkerQuarantined
// with the Retry-After cooldown hint attached, and — being a judgment
// on the worker, not congestion — is never retried by the policy.
func TestClaimQuarantined(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "9")
		w.WriteHeader(http.StatusForbidden)
		fmt.Fprint(w, `{"error":"worker \"w1\" is quarantined"}`)
	}))
	defer ts.Close()
	client := NewClient(ts.URL, WithClientRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond}))
	_, err := client.ClaimWork(context.Background(), "w1", time.Second)
	if !errors.Is(err, ErrWorkerQuarantined) {
		t.Fatalf("quarantined claim = %v, want ErrWorkerQuarantined", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Retryable() || ae.RetryAfter != 9*time.Second {
		t.Fatalf("403 = %+v, want non-retryable APIError with the cooldown hint", ae)
	}
	if calls.Load() != 1 {
		t.Fatalf("quarantined claim was sent %d times, want 1 (no retry)", calls.Load())
	}
}

// TestRegisterDeregisterClient: the lifecycle handshake hits its
// endpoints with the worker name and treats 204 as success.
func TestRegisterDeregisterClient(t *testing.T) {
	var paths []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker != "w1" {
			t.Errorf("bad body on %s: %v (%+v)", r.URL.Path, err, req)
		}
		paths = append(paths, r.URL.Path)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	client := NewClient(ts.URL)
	if err := client.RegisterWorker(context.Background(), "w1"); err != nil {
		t.Fatalf("register = %v", err)
	}
	if err := client.DeregisterWorker(context.Background(), "w1"); err != nil {
		t.Fatalf("deregister = %v", err)
	}
	if len(paths) != 2 || paths[0] != "/v1/work/register" || paths[1] != "/v1/work/deregister" {
		t.Fatalf("paths = %v", paths)
	}
	if err := client.RegisterWorker(context.Background(), ""); err == nil {
		t.Fatal("register with empty worker name must fail client-side")
	}
}

// TestHeartbeatLeaseExpired: 410 Gone maps to ErrLeaseExpired so the
// worker can distinguish "abandon this arm" from transport trouble.
func TestHeartbeatLeaseExpired(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGone)
		fmt.Fprint(w, `{"error":"lease \"L1\" expired or unknown"}`)
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL).HeartbeatWork(context.Background(), "L1")
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat on gone lease = %v, want ErrLeaseExpired", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Retryable() {
		t.Fatalf("410 = %+v, want typed non-retryable APIError", ae)
	}
}

// TestHeartbeatRenewal: a live lease's heartbeat returns the renewed
// window the worker paces itself by.
func TestHeartbeatRenewal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/work/L7/heartbeat" {
			t.Errorf("heartbeat path = %q", r.URL.Path)
		}
		json.NewEncoder(w).Encode(WorkLease{Lease: "L7", DeadlineSeconds: 15})
	}))
	defer ts.Close()
	left, err := NewClient(ts.URL).HeartbeatWork(context.Background(), "L7")
	if err != nil || left != 15*time.Second {
		t.Fatalf("heartbeat = (%v, %v), want 15s", left, err)
	}
}

// TestCompleteWorkStaleReceipt: the upload round-trips the stale flag.
func TestCompleteWorkStaleReceipt(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var res WorkResult
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil || res.Error != "boom" || !res.Transient {
			t.Errorf("bad result body: %v (%+v)", err, res)
		}
		json.NewEncoder(w).Encode(WorkReceipt{Stale: true})
	}))
	defer ts.Close()
	receipt, err := NewClient(ts.URL).CompleteWork(context.Background(), "L7",
		WorkResult{Error: "boom", Transient: true})
	if err != nil || !receipt.Stale {
		t.Fatalf("complete = (%+v, %v), want stale receipt", receipt, err)
	}
}
