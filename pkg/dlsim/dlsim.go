// Package dlsim is the public SDK of the decentralized-learning MIA
// simulator: a stable, programmatic surface over the engine that runs
// the paper's figures and arbitrary declarative scenario specs at a
// chosen scale.
//
// Two entry points cover local and remote use. A [Runner] executes
// scenarios in-process:
//
//	runner, err := dlsim.NewRunner(dlsim.WithScale("tiny"), dlsim.WithWorkers(4))
//	res, err := runner.Run(ctx, &dlsim.Spec{ ... })
//
// A [Client] talks to a `dlsim serve` instance over HTTP/JSON: submit a
// spec as a job, poll it, stream its round records as NDJSON, cancel
// it. Every run entry point takes a [context.Context]; cancelling it
// stops the engine's workers promptly (no new arm starts, running arms
// abort at their next round boundary) and directory-backed sweeps
// checkpoint cleanly so a later resume is byte-identical.
//
// Results are deterministic: for a fixed spec, scale, and seed, any
// worker count — and either transport, in-process or HTTP — produces
// identical records.
package dlsim

import (
	"context"
	"fmt"
	"sync"

	"gossipmia/internal/experiment"
	"gossipmia/internal/metrics"
	"gossipmia/internal/sink"
)

// metricRecord names the engine's record type for the unexported sink
// adapter; it never appears in an exported signature.
type metricRecord = metrics.RoundRecord

// Sink observes a run's measurements as they are produced: one call
// per evaluated round per arm, tagged with the arm label. Records of
// one arm arrive in round order; records of different arms interleave
// when arms run on parallel workers. The Runner serializes calls, so
// implementations need no locking. A returned error aborts the run.
type Sink interface {
	Record(Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event) error

// Record implements Sink.
func (f SinkFunc) Record(ev Event) error { return f(ev) }

// Runner executes scenarios in-process at a fixed scale. The zero
// Runner is not usable; build one with NewRunner. A Runner is safe for
// concurrent use when no Sink is attached; with a Sink, concurrent
// runs share it and their events interleave.
type Runner struct {
	scale experiment.Scale
	// scaleName remembers which named scale the Runner was built at, so
	// work orders handed to remote executors can name it on the wire.
	scaleName string
	sink      Sink
	exec      ArmExecutor
	// sinkMu serializes Record calls into sink across every arm of
	// every run of this Runner — the no-locking contract of Sink.
	sinkMu sync.Mutex
}

// Option configures a Runner.
type Option func(*Runner) error

// WithScale selects the experiment scale by name: "tiny", "quick"
// (default), or "paper".
func WithScale(name string) Option {
	return func(r *Runner) error {
		sc, err := scaleByName(name)
		if err != nil {
			return err
		}
		// Carry over knobs set by earlier options regardless of order.
		sc.Workers = r.scale.Workers
		if r.scale.Seed != defaultScale().Seed {
			sc.Seed = r.scale.Seed
		}
		r.scale = sc
		r.scaleName = name
		return nil
	}
}

// WithWorkers bounds the worker goroutines at every level of a run:
// arm fan-out, the node-parallel tick engine inside each arm, per-node
// evaluation, and the worker-tiled GEMM kernels. 0 (default) means one
// per CPU, 1 forces the serial paths. Results are byte-identical for
// every value.
func WithWorkers(n int) Option {
	return func(r *Runner) error {
		if n < 0 {
			return fmt.Errorf("dlsim: workers must be >= 0, got %d", n)
		}
		r.scale.Workers = n
		return nil
	}
}

// WithSeed overrides the scale's base seed; every arm derives its RNG
// streams from it together with the arm's own seed offset.
func WithSeed(seed int64) Option {
	return func(r *Runner) error {
		r.scale.Seed = seed
		return nil
	}
}

// WithSink streams every evaluated round into s while runs execute.
func WithSink(s Sink) Option {
	return func(r *Runner) error {
		r.sink = s
		return nil
	}
}

// WithArmExecutor offers every non-cached arm of a run to f before
// executing it locally (see ArmExecutor) — the hook the job service
// uses to dispatch arms to a connected worker fleet.
func WithArmExecutor(f ArmExecutor) Option {
	return func(r *Runner) error {
		r.exec = f
		return nil
	}
}

// NewRunner builds a Runner at the quick scale, then applies opts in
// order.
func NewRunner(opts ...Option) (*Runner, error) {
	r := &Runner{scale: defaultScale(), scaleName: "quick"}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func defaultScale() experiment.Scale { return experiment.QuickScale() }

func scaleByName(name string) (experiment.Scale, error) {
	sc, err := experiment.ScaleByName(name)
	if err != nil {
		return experiment.Scale{}, fmt.Errorf("dlsim: %w", err)
	}
	return sc, nil
}

// Scales lists the named experiment scales WithScale accepts.
func Scales() []string { return experiment.ScaleNames() }

// sinkFor adapts the Runner's shared Sink into the engine's per-arm
// sinks: each arm gets its own adapter tagging events with its label,
// all serialized through the Runner's mutex so the user's Sink never
// sees concurrent calls — even across concurrent runs of one Runner.
func (r *Runner) sinkFor() func(i int, label string) (sink.Sink, error) {
	if r.sink == nil {
		return nil
	}
	return func(i int, label string) (sink.Sink, error) {
		return &sinkAdapter{mu: &r.sinkMu, out: r.sink, arm: label}, nil
	}
}

type sinkAdapter struct {
	mu  *sync.Mutex
	out Sink
	arm string
}

func (a *sinkAdapter) Record(rec metricRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.out.Record(Event{Arm: a.arm, RoundRecord: RoundRecord{
		Round: rec.Round, TestAcc: rec.TestAcc, MIAAcc: rec.MIAAcc,
		TPRAt1FPR: rec.TPRAt1FPR, GenError: rec.GenError,
	}})
}

func (a *sinkAdapter) Close() error { return nil }

// Run executes a scenario spec and returns its result. Cancelling ctx
// stops the run and returns an error wrapping ctx.Err().
func (r *Runner) Run(ctx context.Context, sp *Spec) (*Result, error) {
	compiled, err := sp.compile()
	if err != nil {
		return nil, err
	}
	fig, err := experiment.RunSpecExec(ctx, compiled, r.scale, r.sinkFor(), r.execFor())
	if err != nil {
		return nil, err
	}
	return resultOf(fig), nil
}

// DirOptions configure RunDir.
type DirOptions struct {
	// OutDir receives the run artifacts: manifest.json, results.csv,
	// per-arm result caches under arms/, per-arm event streams under
	// events/.
	OutDir string
	// Resume skips arms whose cached result (keyed by content hash and
	// scale fingerprint including the seed) already exists in OutDir.
	Resume bool
	// Events selects the per-arm stream format: "jsonl" (default),
	// "csv", or "none".
	Events string
	// StoreDir, when set, keeps per-arm result caches in one embedded
	// indexed result store at this path instead of one JSON file per
	// arm under OutDir/arms — the backend for sweeps whose arm count
	// makes per-file caching a bottleneck. Resume scans the store once
	// instead of opening a file per arm, results stay byte-identical
	// to the file backend, and several runs may share one store (arms
	// are keyed by content hash, so common arms dedup across runs).
	StoreDir string
}

// ArmReport records how one arm of a directory-backed run was
// satisfied.
type ArmReport struct {
	Label string `json:"label"`
	// Key is the arm's resume-cache key (content hash of arm + scale
	// fingerprint; worker count excluded — it never affects results).
	Key string `json:"key"`
	// Cached is true when the arm was loaded from a previous run's
	// cache instead of executed.
	Cached         bool    `json:"cached"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// ResultFile/EventsFile are OutDir-relative artifact paths.
	ResultFile string `json:"resultFile"`
	EventsFile string `json:"eventsFile,omitempty"`
}

// RunReport summarizes a directory-backed run.
type RunReport struct {
	Spec     string      `json:"spec"`
	SpecHash string      `json:"specHash"`
	Seed     int64       `json:"seed"`
	Workers  int         `json:"workers"`
	Arms     []ArmReport `json:"arms"`
}

// RunDir executes a scenario spec like Run — including streaming into
// a WithSink observer, except for arms served from the resume cache,
// which do not re-stream — and additionally persists the run to
// opts.OutDir (manifest, per-arm resume caches, per-arm event streams,
// results.csv). On cancellation, completed arms keep their
// atomically-written caches, so re-invoking with Resume executes only
// what is missing and produces byte-identical output.
func (r *Runner) RunDir(ctx context.Context, sp *Spec, opts DirOptions) (*Result, *RunReport, error) {
	compiled, err := sp.compile()
	if err != nil {
		return nil, nil, err
	}
	fig, man, err := experiment.RunSpecDir(ctx, compiled, r.scale, experiment.SpecRunOptions{
		OutDir:     opts.OutDir,
		Resume:     opts.Resume,
		Events:     opts.Events,
		StoreDir:   opts.StoreDir,
		ExtraSinks: r.sinkFor(),
		Exec:       r.execFor(),
	})
	if err != nil {
		return nil, nil, err
	}
	report := &RunReport{
		Spec:     man.Spec,
		SpecHash: man.SpecHash,
		Seed:     man.Seed,
		Workers:  man.Workers,
	}
	for _, a := range man.Arms {
		report.Arms = append(report.Arms, ArmReport{
			Label: a.Label, Key: a.Key, Cached: a.Cached,
			ElapsedSeconds: a.ElapsedSeconds,
			ResultFile:     a.ResultFile, EventsFile: a.EventsFile,
		})
	}
	return resultOf(fig), report, nil
}

// RunFigure executes a runnable catalog entry by name (see Catalog).
func (r *Runner) RunFigure(ctx context.Context, name string) (*Result, error) {
	e, ok := experiment.CatalogEntryByName(name)
	if !ok {
		return nil, fmt.Errorf("dlsim: unknown figure %q (see Catalog)", name)
	}
	if !e.Runnable() {
		return nil, fmt.Errorf("dlsim: figure %q renders text only and cannot run as a spec", name)
	}
	fig, err := experiment.RunSpecExec(ctx, e.Spec(r.scale), r.scale, r.sinkFor(), r.execFor())
	if err != nil {
		return nil, err
	}
	if e.Post != nil {
		e.Post(fig)
	}
	return resultOf(fig), nil
}

// FigureSpec returns the declarative spec behind a runnable catalog
// entry at the Runner's scale — the exact spec RunFigure executes,
// ready to submit to a service or write to a file.
func (r *Runner) FigureSpec(name string) (*Spec, error) {
	e, ok := experiment.CatalogEntryByName(name)
	if !ok || !e.Runnable() {
		return nil, fmt.Errorf("dlsim: no runnable catalog entry %q", name)
	}
	return specOf(e.Spec(r.scale))
}

// CatalogEntry describes one runnable scenario of the catalog.
type CatalogEntry struct {
	// Name is the identifier RunFigure and the CLI accept.
	Name string `json:"name"`
	// Desc is the one-line description.
	Desc string `json:"desc"`
	// Runnable is false for text-only entries (tables, attacks), which
	// the CLI renders but RunFigure and the job service cannot execute.
	Runnable bool `json:"runnable"`
}

// Catalog lists the scenario registry: the paper's figures, the
// network scenarios, and the extension studies.
func Catalog() []CatalogEntry {
	var out []CatalogEntry
	for _, e := range experiment.Catalog() {
		out = append(out, CatalogEntry{Name: e.Name, Desc: e.Desc, Runnable: e.Runnable()})
	}
	return out
}
