package dlsim

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gossipmia/internal/experiment"
	"gossipmia/internal/spec"
)

// Spec is one declarative scenario: a named set of arms, optionally
// augmented by a cartesian sweep that expands into further arms. It is
// the stable public face of the engine's scenario language — the JSON
// encoding is identical to the spec files dlsim runs and the bodies
// POST /v1/jobs accepts.
type Spec struct {
	Name    string `json:"name"`
	Caption string `json:"caption,omitempty"`
	Arms    []Arm  `json:"arms,omitempty"`
	Sweep   *Sweep `json:"sweep,omitempty"`
}

// Arm describes one experimental arm declaratively. Zero values of the
// optional fields select the seed semantics: static topology, IID
// partition, no DP, no canaries, instant transport, no churn, the
// corpus's catalog training configuration.
type Arm struct {
	// Label identifies the arm in tables and event streams; it must be
	// unique within the spec.
	Label string `json:"label"`
	// Corpus is the dataset stand-in: "cifar10", "cifar100",
	// "fashionmnist", or "purchase100".
	Corpus string `json:"corpus"`
	// Protocol is the gossip protocol: "base", "samo", or "samo-nodelay".
	Protocol string `json:"protocol"`
	// ViewSize is k, the regular degree.
	ViewSize int `json:"viewSize"`
	// Dynamics selects the topology evolution: "" or "static",
	// "peerswap", or "cyclon".
	Dynamics string `json:"dynamics,omitempty"`
	// Beta > 0 selects the Dirichlet non-IID partition with that β.
	Beta float64 `json:"beta,omitempty"`
	// DP enables node-level DP-SGD.
	DP *DP `json:"dp,omitempty"`
	// Canaries plants the scale's canary budget (worst-case audit).
	Canaries bool `json:"canaries,omitempty"`
	// SeedOffset separates the arm's RNG streams from its siblings'.
	SeedOffset int64 `json:"seedOffset"`
	// Net pins the arm's transport model; nil keeps the instant
	// transport.
	Net *Net `json:"net,omitempty"`
	// Churn schedules explicit node departures and rejoins (ticks).
	Churn []Churn `json:"churn,omitempty"`
	// ChurnFraction in (0,1) is the shorthand: that fraction of nodes
	// leaves at one third of the run and rejoins at two thirds.
	ChurnFraction float64 `json:"churnFraction,omitempty"`
	// Train overrides the corpus's catalog training config entirely.
	Train *Train `json:"train,omitempty"`
	// TrainPerFactor scales the per-node training-set size.
	TrainPerFactor float64 `json:"trainPerFactor,omitempty"`
	// LocalEpochs > 0 overrides only the local epoch count.
	LocalEpochs int `json:"localEpochs,omitempty"`
}

// DP is the declarative face of the DP-SGD configuration.
type DP struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	Clip    float64 `json:"clip"`
}

// Net is the declarative face of the transport configuration.
type Net struct {
	// Transport is "instant", "latency", or "lossy".
	Transport string `json:"transport"`
	// LatencyMean/LatencyJitter parameterize the per-link delay (ticks).
	LatencyMean   float64 `json:"latencyMean,omitempty"`
	LatencyJitter float64 `json:"latencyJitter,omitempty"`
	// BandwidthBytesPerTick > 0 adds the wire-size serialization term.
	BandwidthBytesPerTick int `json:"bandwidthBytesPerTick,omitempty"`
	// DropProb is the i.i.d. transmission loss probability.
	DropProb float64 `json:"dropProb,omitempty"`
	// Partitions schedules healing network partitions (ticks).
	Partitions []Partition `json:"partitions,omitempty"`
}

// Partition is one scheduled network partition.
type Partition struct {
	FromTick int   `json:"fromTick"`
	ToTick   int   `json:"toTick"`
	Members  []int `json:"members"`
}

// Churn is one scheduled departure/rejoin event.
type Churn struct {
	Node      int `json:"node"`
	LeaveTick int `json:"leaveTick"`
	// RejoinTick 0 means the node never comes back.
	RejoinTick int `json:"rejoinTick,omitempty"`
}

// Train is the declarative face of the training configuration.
type Train struct {
	Hidden      []int   `json:"hidden,omitempty"`
	LR          float64 `json:"lr"`
	Momentum    float64 `json:"momentum,omitempty"`
	WeightDecay float64 `json:"weightDecay,omitempty"`
	LRDecay     float64 `json:"lrDecay,omitempty"`
	BatchSize   int     `json:"batchSize,omitempty"`
	LocalEpochs int     `json:"localEpochs"`
}

// Sweep expands the cartesian product of its axes over a base arm.
type Sweep struct {
	Base Arm    `json:"base"`
	Axes []Axis `json:"axes"`
}

// Axis is one sweep dimension: the arm field it sets and the values it
// takes (see the spec documentation for the supported field names).
type Axis struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// compile converts the public spec into the engine's representation,
// applying the engine's full structural validation (unknown names,
// duplicate labels, shared seed offsets, unexpandable sweeps).
func (s *Spec) compile() (*spec.Spec, error) {
	if s == nil {
		return nil, fmt.Errorf("dlsim: nil spec")
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("dlsim: encode spec: %w", err)
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("dlsim: %w", err)
	}
	return sp, nil
}

// Validate reports structural errors in the spec without running it.
func (s *Spec) Validate() error {
	_, err := s.compile()
	return err
}

// Hash returns the spec's canonical content hash: the SHA-256 of its
// expanded arm list. Two specs that expand to the same arms hash
// identically; the hash keys the engine's resume cache and the
// service's job dedup.
func (s *Spec) Hash() (string, error) {
	sp, err := s.compile()
	if err != nil {
		return "", err
	}
	return sp.Hash()
}

// LoadSpec reads, parses, and validates a scenario spec file (the same
// JSON format dlsim -spec runs).
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dlsim: read %s: %w", path, err)
	}
	return ParseSpec(raw)
}

// ParseSpec decodes and validates a scenario spec from JSON. Unknown
// fields are rejected so typos cannot silently select defaults.
func ParseSpec(raw []byte) (*Spec, error) {
	if _, err := spec.Parse(raw); err != nil {
		return nil, fmt.Errorf("dlsim: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("dlsim: decode spec: %w", err)
	}
	return &s, nil
}

// RoundRecord holds the per-round measurements the engine reports:
// global test accuracy, the two MIA vulnerability measures, and
// generalization error.
type RoundRecord struct {
	Round     int     `json:"round"`
	TestAcc   float64 `json:"testAcc"`
	MIAAcc    float64 `json:"miaAcc"`
	TPRAt1FPR float64 `json:"tprAt1FPR"`
	GenError  float64 `json:"genError"`
}

// Event is one streamed measurement: an arm label plus the round's
// record — the unit of the SDK's Sink interface, the engine's JSONL
// event files, and the service's NDJSON /v1/jobs/{id}/events stream.
type Event struct {
	Arm string `json:"arm"`
	RoundRecord
}

// ArmResult is one arm's outcome: its per-round series plus run-level
// aggregates.
type ArmResult struct {
	Label           string        `json:"label"`
	Records         []RoundRecord `json:"records"`
	MessagesSent    int           `json:"messagesSent"`
	BytesSent       int           `json:"bytesSent"`
	RealizedEpsilon float64       `json:"realizedEpsilon,omitempty"`
	NoiseMultiplier float64       `json:"noiseMultiplier,omitempty"`
}

// Checksum returns the sha256 (hex) of the arm result's canonical
// JSON encoding. Floats survive a JSON round trip exactly (Go emits
// the shortest representation that decodes back to the same value),
// so decode(encode(a)).Checksum() == a.Checksum() — which lets the
// service re-verify an uploaded result against the sum the worker
// claimed, without trusting the worker's bytes.
func (a ArmResult) Checksum() string {
	raw, err := json.Marshal(a)
	if err != nil {
		// ArmResult contains only marshalable fields; this cannot
		// happen for real values.
		return ""
	}
	return fmt.Sprintf("%x", sha256.Sum256(raw))
}

// AtMaxTestAcc returns the record of the round achieving the best
// global test accuracy — the operating point the paper quotes.
func (a ArmResult) AtMaxTestAcc() RoundRecord {
	var best RoundRecord
	for i, r := range a.Records {
		if i == 0 || r.TestAcc > best.TestAcc {
			best = r
		}
	}
	return best
}

// Result collects the arms of one completed scenario run.
type Result struct {
	Name    string      `json:"name"`
	Caption string      `json:"caption,omitempty"`
	Arms    []ArmResult `json:"arms"`
	// Notes are analysis lines appended below the table.
	Notes []string `json:"notes,omitempty"`
}

// Table renders the per-arm summary rows of the result.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.Name, r.Caption)
	fmt.Fprintf(&b, "%-38s %8s %8s %8s %8s %8s %9s %9s %8s\n",
		"arm", "maxAcc", "MIA@max", "maxMIA", "maxTPR", "maxGen", "messages", "MiB", "epsilon")
	for _, a := range r.Arms {
		at := a.AtMaxTestAcc()
		var maxMIA, maxTPR, maxGen float64
		for _, rec := range a.Records {
			maxMIA = max(maxMIA, rec.MIAAcc)
			maxTPR = max(maxTPR, rec.TPRAt1FPR)
			maxGen = max(maxGen, rec.GenError)
		}
		fmt.Fprintf(&b, "%-38s %8.3f %8.3f %8.3f %8.3f %8.3f %9d %9.1f %8.2f\n",
			a.Label, at.TestAcc, at.MIAAcc, maxMIA, maxTPR,
			maxGen, a.MessagesSent, float64(a.BytesSent)/(1<<20), a.RealizedEpsilon)
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// specOf converts an engine spec into the public representation (the
// JSON encodings are identical by construction).
func specOf(sp *spec.Spec) (*Spec, error) {
	raw, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("dlsim: encode spec: %w", err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("dlsim: decode spec: %w", err)
	}
	return &s, nil
}

// resultOf converts the engine's figure into the public result.
func resultOf(fig *experiment.FigureResult) *Result {
	res := &Result{Name: fig.Name, Caption: fig.Caption, Notes: fig.Notes}
	for _, arm := range fig.Arms {
		out := ArmResult{
			Label:           arm.Label,
			MessagesSent:    arm.MessagesSent,
			BytesSent:       arm.BytesSent,
			RealizedEpsilon: arm.RealizedEpsilon,
			NoiseMultiplier: arm.NoiseMultiplier,
		}
		for _, rec := range arm.Series.Records {
			out.Records = append(out.Records, RoundRecord{
				Round: rec.Round, TestAcc: rec.TestAcc, MIAAcc: rec.MIAAcc,
				TPRAt1FPR: rec.TPRAt1FPR, GenError: rec.GenError,
			})
		}
		res.Arms = append(res.Arms, out)
	}
	return res
}
