package dlsim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"gossipmia/internal/experiment"
	"gossipmia/internal/spec"
)

// testSpec is a small two-arm scenario for SDK tests.
func testSpec() *Spec {
	return &Spec{
		Name: "sdk test",
		Arms: []Arm{
			{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2, SeedOffset: 1},
			{Label: "b", Corpus: "cifar10", Protocol: "base", ViewSize: 2, SeedOffset: 2},
		},
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := NewRunner(WithScale("galactic")); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if _, err := NewRunner(WithWorkers(-1)); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := NewRunner(WithScale("tiny"), WithWorkers(2), WithSeed(9)); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	// Option order must not matter: a seed or worker count set before
	// WithScale survives the scale swap.
	r1, err := NewRunner(WithSeed(9), WithWorkers(3), WithScale("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(WithScale("tiny"), WithSeed(9), WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.scale != r2.scale {
		t.Fatalf("option order changed the scale: %+v vs %+v", r1.scale, r2.scale)
	}
}

func TestSpecValidateAndHash(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := testSpec()
	bad.Arms[0].Corpus = "mnist"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown corpus accepted")
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Fatal("nil spec accepted")
	}
	// The public hash is the engine's content hash.
	h, err := testSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	internal, err := testSpec().compile()
	if err != nil {
		t.Fatal(err)
	}
	want, err := internal.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != want {
		t.Fatalf("public hash %s != engine hash %s", h, want)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2,"dropPorb":0.1}]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	sp, err := ParseSpec([]byte(`{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2}]}`))
	if err != nil || sp.Name != "x" || len(sp.Arms) != 1 {
		t.Fatalf("ParseSpec = %+v, %v", sp, err)
	}
}

// TestRunnerMatchesEngine is the SDK fidelity check: Runner.Run yields
// exactly the records the engine's RunSpec produces, and a sink
// attached via WithSink observes every one of them.
func TestRunnerMatchesEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	seen := map[string][]RoundRecord{}
	runner, err := NewRunner(WithScale("tiny"), WithWorkers(2), WithSink(SinkFunc(func(ev Event) error {
		seen[ev.Arm] = append(seen[ev.Arm], ev.RoundRecord)
		return nil
	})))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(t.Context(), testSpec())
	if err != nil {
		t.Fatal(err)
	}

	internal, err := testSpec().compile()
	if err != nil {
		t.Fatal(err)
	}
	sc := experiment.TinyScale()
	sc.Workers = 2
	fig, err := experiment.RunSpec(t.Context(), internal, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != len(fig.Arms) {
		t.Fatalf("arm count %d != %d", len(res.Arms), len(fig.Arms))
	}
	for i, arm := range res.Arms {
		want := fig.Arms[i]
		if arm.Label != want.Label || arm.MessagesSent != want.MessagesSent || arm.BytesSent != want.BytesSent {
			t.Fatalf("arm %d aggregates diverge: %+v vs %+v", i, arm, want)
		}
		if len(arm.Records) != len(want.Series.Records) {
			t.Fatalf("arm %q record count %d != %d", arm.Label, len(arm.Records), len(want.Series.Records))
		}
		for j, rec := range arm.Records {
			w := want.Series.Records[j]
			if rec != (RoundRecord{Round: w.Round, TestAcc: w.TestAcc, MIAAcc: w.MIAAcc, TPRAt1FPR: w.TPRAt1FPR, GenError: w.GenError}) {
				t.Fatalf("arm %q record %d diverges: %+v vs %+v", arm.Label, j, rec, w)
			}
		}
		// The sink saw the same stream, in round order per arm.
		if len(seen[arm.Label]) != len(arm.Records) {
			t.Fatalf("sink saw %d records for %q, want %d", len(seen[arm.Label]), arm.Label, len(arm.Records))
		}
		for j, rec := range seen[arm.Label] {
			if rec != arm.Records[j] {
				t.Fatalf("sink record %d for %q diverges", j, arm.Label)
			}
		}
	}
	if !strings.Contains(res.Table(), "a") || !strings.Contains(res.Table(), "arm") {
		t.Fatalf("table rendering broken:\n%s", res.Table())
	}
}

func TestRunnerCancelled(t *testing.T) {
	runner, err := NewRunner(WithScale("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.Run(ctx, testSpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunFigureAndCatalog(t *testing.T) {
	entries := Catalog()
	if len(entries) == 0 {
		t.Fatal("empty catalog")
	}
	byName := map[string]CatalogEntry{}
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e, ok := byName["8"]; !ok || !e.Runnable {
		t.Fatalf("figure 8 missing or not runnable: %+v", byName["8"])
	}
	if e, ok := byName["tables"]; !ok || e.Runnable {
		t.Fatalf("tables entry wrong: %+v", byName["tables"])
	}
	runner, err := NewRunner(WithScale("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.RunFigure(t.Context(), "nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := runner.RunFigure(t.Context(), "tables"); err == nil {
		t.Fatal("text-only figure accepted")
	}
	// FigureSpec emits the exact spec RunFigure executes.
	sp, err := runner.FigureSpec("8")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name == "" || len(sp.Arms) == 0 {
		t.Fatalf("figure spec = %+v", sp)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("emitted figure spec invalid: %v", err)
	}
}

func TestRunFigureTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	runner, err := NewRunner(WithScale("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.RunFigure(t.Context(), "8")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("figure 8 arms = %d", len(res.Arms))
	}
}

func TestVersionIdentity(t *testing.T) {
	v := Version()
	if v.Module == "" || v.GoVersion == "" || len(v.SpecSchemaHash) != 64 {
		t.Fatalf("version = %+v", v)
	}
	if v.SpecSchemaHash != spec.SchemaHash() {
		t.Fatal("version does not report the engine's schema hash")
	}
	if Version() != v {
		t.Fatal("Version is not deterministic")
	}
}

// TestRunDirStreamsToSink: WithSink must observe persisted runs too —
// except arms served from the resume cache, which do not re-stream.
func TestRunDirStreamsToSink(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var events int
	runner, err := NewRunner(WithScale("tiny"), WithSink(SinkFunc(func(Event) error {
		events++
		return nil
	})))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, _, err := runner.RunDir(t.Context(), testSpec(), DirOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, arm := range res.Arms {
		want += len(arm.Records)
	}
	if events == 0 || events != want {
		t.Fatalf("sink saw %d events on RunDir, want %d", events, want)
	}
	// Resumed arms come from cache and do not re-stream.
	events = 0
	if _, _, err := runner.RunDir(t.Context(), testSpec(), DirOptions{OutDir: dir, Resume: true}); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatalf("cached resume streamed %d events, want 0", events)
	}
}
