package dlsim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Job statuses reported by the service. A job is terminal once it is
// done, failed, or cancelled.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// TerminalStatus reports whether a job status is final.
func TerminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// JobRequest is the POST /v1/jobs body: the scenario spec plus the run
// parameters. Zero values select the service's defaults.
type JobRequest struct {
	Spec *Spec `json:"spec"`
	// Scale is a named scale: "tiny", "quick", or "paper".
	Scale string `json:"scale,omitempty"`
	// Seed overrides the scale's base seed (0 keeps the preset).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the job's worker goroutines (0 = one per CPU).
	// Worker count never affects results, so it is excluded from the
	// dedup key.
	Workers int `json:"workers,omitempty"`
}

// JobStatus describes one submitted job.
type JobStatus struct {
	ID string `json:"id"`
	// Key is the job's dedup key: the content hash of the spec's
	// expanded arms together with the scale fingerprint (seed
	// included, workers excluded). Identical submissions share a key —
	// and, through the service's result cache, a single execution.
	Key    string `json:"key"`
	Status string `json:"status"`
	// Deduped marks a submission that was answered by an existing job
	// with the same key instead of a new execution.
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
	Spec    string `json:"spec"`
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	// Events counts the round records streamed so far.
	Events      int    `json:"events"`
	SubmittedAt string `json:"submittedAt"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// Result carries the full per-arm outcome once Status is "done".
	Result *Result `json:"result,omitempty"`
}

// Client talks to a `dlsim serve` instance over its HTTP/JSON v1 API.
// The zero Client is not usable; build one with NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles). The default client has no timeout: event
// streams are long-lived, so deadlines belong on the per-call context.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// NewClient builds a client for a service base URL such as
// "http://127.0.0.1:8080".
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// apiError is the service's error envelope.
type apiError struct {
	Error string `json:"error"`
}

// ErrJobQueueFull is returned by Submit when the service's bounded job
// queue cannot accept another submission; retry later or raise the
// service's -queue depth.
var ErrJobQueueFull = errors.New("dlsim: job queue full")

// ErrNotFound is returned when the service does not know the requested
// job — never created, or already evicted by the service's bounded
// job retention.
var ErrNotFound = errors.New("dlsim: not found")

// do issues one JSON request and decodes the response into out (when
// non-nil), translating non-2xx responses into errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("dlsim: encode request: %w", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("dlsim: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dlsim: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		return fmt.Errorf("%w (%s %s)", ErrJobQueueFull, method, path)
	}
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w (%s %s)", ErrNotFound, method, path)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err == nil && ae.Error != "" {
			return fmt.Errorf("dlsim: %s %s: %s (HTTP %d)", method, path, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("dlsim: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dlsim: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit posts a scenario spec as a job. The spec is validated locally
// first so structural errors surface without a round trip. An
// identical in-flight or completed submission (same dedup key) is
// answered by the existing job with Deduped set.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	if req.Spec == nil {
		return nil, fmt.Errorf("dlsim: submit: nil spec")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	var job JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches one job's status (including its result once done).
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var job JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Jobs lists every job the service knows, newest first.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// Cancel stops a queued or running job and frees its queue slot. It
// returns the job's post-cancel status; cancelling a terminal job is a
// no-op returning its final state.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var job JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Events streams a job's round records: every event already produced
// is replayed in order, then the stream follows the job live until it
// reaches a terminal status, fn returns an error, or ctx is
// cancelled. fn runs on the calling goroutine.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return fmt.Errorf("dlsim: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dlsim: events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		if err := json.NewDecoder(resp.Body).Decode(&ae); err == nil && ae.Error != "" {
			return fmt.Errorf("dlsim: events: %s (HTTP %d)", ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("dlsim: events: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("dlsim: events: bad line %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("dlsim: events: %w", err)
	}
	// The server ends the stream only when the job is terminal; a clean
	// EOF on a still-live job means an intermediary dropped the
	// connection, which must not masquerade as completion.
	job, err := c.Job(ctx, id)
	if errors.Is(err, ErrNotFound) {
		// The stream itself existed, so the job did too: it has since
		// been evicted by job retention — only terminal jobs are.
		return nil
	}
	if err != nil {
		return fmt.Errorf("dlsim: events: stream ended, status check failed: %w", err)
	}
	if !TerminalStatus(job.Status) {
		return fmt.Errorf("dlsim: events: stream for job %s ended while the job is still %s (connection dropped?)", id, job.Status)
	}
	return nil
}

// Await polls a job until it reaches a terminal status, returning its
// final state. poll <= 0 defaults to 200ms.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if TerminalStatus(job.Status) {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Catalog fetches the service's scenario catalog.
func (c *Client) Catalog(ctx context.Context) ([]CatalogEntry, error) {
	var out struct {
		Scenarios []CatalogEntry `json:"scenarios"`
		Scales    []string       `json:"scales"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/catalog", nil, &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Version fetches the service build's identity.
func (c *Client) Version(ctx context.Context) (*VersionInfo, error) {
	var v VersionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Health probes /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}
