package dlsim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Job statuses reported by the service. A job is terminal once it is
// done, failed, or cancelled.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// TerminalStatus reports whether a job status is final.
func TerminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// JobRequest is the POST /v1/jobs body: the scenario spec plus the run
// parameters. Zero values select the service's defaults.
type JobRequest struct {
	Spec *Spec `json:"spec"`
	// Scale is a named scale: "tiny", "quick", or "paper".
	Scale string `json:"scale,omitempty"`
	// Seed overrides the scale's base seed (0 keeps the preset).
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the job's worker goroutines (0 = one per CPU).
	// Worker count never affects results, so it is excluded from the
	// dedup key.
	Workers int `json:"workers,omitempty"`
}

// JobStatus describes one submitted job.
type JobStatus struct {
	ID string `json:"id"`
	// Key is the job's dedup key: the content hash of the spec's
	// expanded arms together with the scale fingerprint (seed
	// included, workers excluded). Identical submissions share a key —
	// and, through the service's result cache, a single execution.
	Key    string `json:"key"`
	Status string `json:"status"`
	// Deduped marks a submission that was answered by an existing job
	// with the same key instead of a new execution.
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
	Spec    string `json:"spec"`
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
	// Tenant is the authenticated submitter ("anonymous" on an open
	// service).
	Tenant string `json:"tenant,omitempty"`
	// Attempts counts execution tries; a value above 1 means the
	// service retried transient failures before this outcome.
	Attempts int `json:"attempts,omitempty"`
	// Events counts the round records streamed so far.
	Events      int    `json:"events"`
	SubmittedAt string `json:"submittedAt"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// Result carries the full per-arm outcome once Status is "done".
	Result *Result `json:"result,omitempty"`
	// WorkerFailures aggregates the per-worker error history of arms
	// that kept failing on the fleet and were contained (executed
	// locally or failed for good) instead of cycling forever.
	WorkerFailures []WorkerFailure `json:"workerFailures,omitempty"`
}

// WorkerFailure is one failed remote execution attempt of an arm,
// attributed to the worker that held its lease.
type WorkerFailure struct {
	Worker string `json:"worker"`
	Arm    string `json:"arm"`
	Reason string `json:"reason"`
}

// APIError is the typed form of a non-2xx service response: the HTTP
// status, the server's error message, and the parsed Retry-After hint
// when the server sent one. Callers distinguish retryable congestion
// (429, 503) from fatal errors with Retryable, or errors.As for the
// details; errors.Is against ErrJobQueueFull and ErrNotFound keeps
// working on top.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error envelope text (may be empty).
	Message string
	// RetryAfter is the server's Retry-After hint, 0 when absent.
	RetryAfter time.Duration
	// Method and Path identify the failed call.
	Method, Path string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("dlsim: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("dlsim: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// Retryable reports whether the failure is congestion that a backoff
// can outwait (429 rate limit/quota, 503 queue full or draining, 502/504
// intermediary trouble) rather than a property of the request.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Is maps the typed error onto the package's sentinel errors, so
// errors.Is(err, ErrJobQueueFull) and errors.Is(err, ErrNotFound) hold
// for the statuses those sentinels describe.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrJobQueueFull:
		return e.Status == http.StatusServiceUnavailable
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrLeaseExpired:
		return e.Status == http.StatusGone
	case ErrWorkerQuarantined:
		return e.Status == http.StatusForbidden
	}
	return false
}

// RetryPolicy bounds the client's retries: MaxAttempts total tries per
// call with exponential backoff from BaseDelay capped at MaxDelay,
// deterministically jittered. The server's Retry-After hint, when
// present and longer, wins over the computed backoff.
type RetryPolicy struct {
	// MaxAttempts is the total tries per call (first included). <= 1
	// disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. Default 200ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 10s.
	MaxDelay time.Duration
}

// withDefaults resolves unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Second
	}
	return p
}

// backoff returns the wait before retry attempt k (k >= 1) with
// deterministic jitter in [50%, 100%] of the exponential step.
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseDelay << (k - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	z := uint64(k) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(float64(d) * (0.5 + 0.5*float64(z%1024)/1024))
}

// Client talks to a `dlsim serve` instance over its HTTP/JSON v1 API.
// The zero Client is not usable; build one with NewClient.
type Client struct {
	base  string
	hc    *http.Client
	token string
	retry RetryPolicy
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles). The default client has no timeout: event
// streams are long-lived, so deadlines belong on the per-call context.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithToken attaches a bearer token to every request — required against
// a service running with -tokens.
func WithToken(token string) ClientOption {
	return func(c *Client) { c.token = token }
}

// WithClientRetry retries failed calls under p: transport errors and
// retryable statuses (429, 502, 503, 504) back off exponentially with
// deterministic jitter, honoring the server's Retry-After hint when it
// is longer. Every v1 call is safe to retry — GET/DELETE by HTTP
// semantics, and Submit because the service dedups identical
// submissions onto one job, so a retried POST whose first try actually
// landed converges onto the same execution. Events additionally
// auto-reconnects dropped streams under the same budget, resuming from
// the replay offset already consumed.
func WithClientRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// NewClient builds a client for a service base URL such as
// "http://127.0.0.1:8080".
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// apiError is the service's error envelope.
type apiError struct {
	Error string `json:"error"`
}

// ErrJobQueueFull is returned by Submit when the service's bounded job
// queue cannot accept another submission (or the service is draining);
// retry later or raise the service's -queue depth.
var ErrJobQueueFull = errors.New("dlsim: job queue full")

// ErrNotFound is returned when the service does not know the requested
// job — never created, or already evicted by the service's bounded
// job retention.
var ErrNotFound = errors.New("dlsim: not found")

// newRequest assembles one API request with auth attached.
func (c *Client) newRequest(ctx context.Context, method, path string, raw []byte) (*http.Request, error) {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("dlsim: %w", err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// errorOf translates a non-2xx response into a typed *APIError.
func errorOf(resp *http.Response, method, path string) *APIError {
	ae := &APIError{Status: resp.StatusCode, Method: method, Path: path}
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil {
		ae.Message = env.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// shouldRetry decides whether err is worth another attempt under the
// client's policy, and how long to wait before it.
func (c *Client) shouldRetry(err error, attempt int, ctx context.Context) (time.Duration, bool) {
	if c.retry.MaxAttempts <= 1 || attempt >= c.retry.MaxAttempts || ctx.Err() != nil {
		return 0, false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if !ae.Retryable() {
			return 0, false
		}
		wait := c.retry.backoff(attempt)
		if ae.RetryAfter > wait {
			wait = ae.RetryAfter
		}
		return wait, true
	}
	// Anything else at this layer is a transport-level failure
	// (connection refused/reset, unexpected EOF): retryable.
	return c.retry.backoff(attempt), true
}

// sleep waits for d, cancellably.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// do issues one JSON request and decodes the response into out (when
// non-nil), translating non-2xx responses into *APIError and retrying
// under the client's retry policy.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("dlsim: encode request: %w", err)
		}
	}
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, raw, out)
		if err == nil {
			return nil
		}
		wait, retry := c.shouldRetry(err, attempt, ctx)
		if !retry {
			return err
		}
		sleep(ctx, wait)
	}
}

// doOnce is a single request/response cycle.
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, out any) error {
	req, err := c.newRequest(ctx, method, path, raw)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("dlsim: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return errorOf(resp, method, path)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("dlsim: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit posts a scenario spec as a job. The spec is validated locally
// first so structural errors surface without a round trip. An
// identical in-flight or completed submission (same dedup key) is
// answered by the existing job with Deduped set.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	if req.Spec == nil {
		return nil, fmt.Errorf("dlsim: submit: nil spec")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	var job JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Job fetches one job's status (including its result once done).
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var job JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Jobs lists every job the service knows, newest first.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs); err != nil {
		return nil, err
	}
	return jobs, nil
}

// JobPage is one window of the service's job table, newest first.
// Total counts every job the service retains, so offset+len(Jobs) vs
// Total tells a pager whether more windows remain.
type JobPage struct {
	Jobs   []*JobStatus `json:"jobs"`
	Total  int          `json:"total"`
	Offset int          `json:"offset"`
	Limit  int          `json:"limit"`
}

// JobsPage lists one window of the job table: limit jobs (0 = no
// limit) starting offset jobs from the newest. Use it instead of Jobs
// against services retaining more jobs than one response should carry.
func (c *Client) JobsPage(ctx context.Context, limit, offset int) (*JobPage, error) {
	if limit < 0 || offset < 0 {
		return nil, fmt.Errorf("dlsim: jobs page: limit and offset must be >= 0, got %d, %d", limit, offset)
	}
	q := url.Values{}
	q.Set("limit", strconv.Itoa(limit))
	q.Set("offset", strconv.Itoa(offset))
	var page JobPage
	if err := c.do(ctx, http.MethodGet, "/v1/jobs?"+q.Encode(), nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Cancel stops a queued or running job and frees its queue slot. It
// returns the job's post-cancel status; cancelling a terminal job is a
// no-op returning its final state.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var job JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// errStreamDropped marks a stream that ended without the job being
// terminal — the retryable failure mode of Events.
type errStreamDropped struct{ err error }

func (e *errStreamDropped) Error() string { return e.err.Error() }
func (e *errStreamDropped) Unwrap() error { return e.err }

// Events streams a job's round records: every event already produced
// is replayed in order, then the stream follows the job live until it
// reaches a terminal status, fn returns an error, or ctx is cancelled.
// fn runs on the calling goroutine.
//
// With WithClientRetry configured, a dropped stream (transport error or
// a connection an intermediary closed while the job was still live)
// reconnects automatically under the retry budget, resuming from the
// replay offset already consumed via the server's ?offset parameter.
// Records of an arm are delivered to fn exactly once in round order
// even across reconnects and server-side retries: the engine is
// deterministic, so a re-streamed round is byte-identical and the
// client drops it by its round number.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	offset := 0
	lastRound := map[string]int{}
	for attempt := 1; ; attempt++ {
		err := c.streamEvents(ctx, id, &offset, lastRound, fn)
		if err == nil {
			return nil
		}
		var dropped *errStreamDropped
		retryable := errors.As(err, &dropped)
		var ae *APIError
		if errors.As(err, &ae) {
			retryable = ae.Retryable()
		}
		if !retryable {
			return err
		}
		wait, retry := c.shouldRetry(err, attempt, ctx)
		if !retry {
			if dropped != nil {
				return dropped.err
			}
			return err
		}
		sleep(ctx, wait)
	}
}

// streamEvents consumes one events connection from *offset, advancing
// the offset per raw line and filtering per-arm round duplicates, so a
// resumed or retried stream delivers each record exactly once.
func (c *Client) streamEvents(ctx context.Context, id string, offset *int, lastRound map[string]int, fn func(Event) error) error {
	path := "/v1/jobs/" + url.PathEscape(id) + "/events"
	if *offset > 0 {
		path += "?offset=" + strconv.Itoa(*offset)
	}
	req, err := c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &errStreamDropped{fmt.Errorf("dlsim: events: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorOf(resp, http.MethodGet, path)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		*offset++
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("dlsim: events: bad line %q: %w", line, err)
		}
		if last, seen := lastRound[ev.Arm]; seen && ev.Round <= last {
			continue // re-streamed by a server-side retry: drop
		}
		lastRound[ev.Arm] = ev.Round
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return &errStreamDropped{fmt.Errorf("dlsim: events: %w", err)}
	}
	// The server ends the stream only when the job is terminal; a clean
	// EOF on a still-live job means an intermediary dropped the
	// connection, which must not masquerade as completion.
	job, err := c.Job(ctx, id)
	if errors.Is(err, ErrNotFound) {
		// The stream itself existed, so the job did too: it has since
		// been evicted by job retention — only terminal jobs are.
		return nil
	}
	if err != nil {
		return fmt.Errorf("dlsim: events: stream ended, status check failed: %w", err)
	}
	if !TerminalStatus(job.Status) {
		return &errStreamDropped{fmt.Errorf("dlsim: events: stream for job %s ended while the job is still %s (connection dropped?)", id, job.Status)}
	}
	return nil
}

// Await polls a job until it reaches a terminal status, returning its
// final state. poll <= 0 defaults to 200ms.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if TerminalStatus(job.Status) {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Catalog fetches the service's scenario catalog.
func (c *Client) Catalog(ctx context.Context) ([]CatalogEntry, error) {
	var out struct {
		Scenarios []CatalogEntry `json:"scenarios"`
		Scales    []string       `json:"scales"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/catalog", nil, &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Version fetches the service build's identity.
func (c *Client) Version(ctx context.Context) (*VersionInfo, error) {
	var v VersionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Health probes /v1/healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}
