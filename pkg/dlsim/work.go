package dlsim

// Distributed sweep execution: the wire types and client methods of
// the work-claim API (`POST /v1/work/claim`, `POST
// /v1/work/{lease}/result`, `POST /v1/work/{lease}/heartbeat`), plus
// the ArmExecutor hook a Runner uses to offer arms to a remote fleet.
//
// The unit of distribution is one arm, identified by its content hash
// (arm JSON + scale fingerprint + seed, worker count excluded).
// Execution is deterministic, so a work order is idempotent: any
// worker, any number of times, produces byte-identical records —
// which is what makes lease reclaim and duplicate uploads safe.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/metrics"
)

// ErrLeaseExpired reports a work lease the server no longer honors:
// it expired (and the arm was reclaimed for re-dispatch) or was never
// known. Workers should abandon the unit; its result, if uploaded
// anyway, is discarded as a harmless duplicate.
var ErrLeaseExpired = errors.New("dlsim: work lease expired")

// ArmExecutor may execute one arm of a run somewhere other than this
// process. It is consulted for every arm that is not served from a
// resume cache. Return handled=false to decline — the Runner executes
// the arm locally. Return handled=true with a result to substitute
// remote execution; the result must carry the records of the exact
// ordered series the arm produces locally (guaranteed when the remote
// side ran the same order through a Runner).
type ArmExecutor func(ctx context.Context, order WorkOrder) (*ArmResult, bool, error)

// WorkOrder is one leased arm execution: everything a worker needs to
// reproduce the arm byte-for-byte, plus its lease obligations.
type WorkOrder struct {
	// Lease identifies the claim; heartbeat and result URLs embed it.
	// It is empty inside a Runner's ArmExecutor hook (the lease is
	// minted when a worker claims the unit).
	Lease string `json:"lease,omitempty"`
	// Job is the server job this arm belongs to.
	Job string `json:"job,omitempty"`
	// Spec and Index locate the arm within its submitted spec; Label
	// names it; Key is its content hash (the idempotency identity and
	// cluster-wide cache key).
	Spec  string `json:"spec"`
	Label string `json:"label"`
	Index int    `json:"index"`
	Key   string `json:"key"`
	// Arm is the fully expanded declarative arm.
	Arm Arm `json:"arm"`
	// Scale names the experiment scale; Seed is the resolved base seed.
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// LeaseSeconds is how long the lease stays valid without a
	// heartbeat; workers renew at a fraction of it.
	LeaseSeconds float64 `json:"leaseSeconds,omitempty"`
}

// ClaimRequest is the POST /v1/work/claim body.
type ClaimRequest struct {
	// Worker identifies the claiming worker for lease bookkeeping and
	// liveness; any stable non-empty string.
	Worker string `json:"worker"`
	// WaitSeconds long-polls the claim up to this many seconds before
	// the server answers 204 No Content. The server clamps it.
	WaitSeconds int `json:"waitSeconds,omitempty"`
}

// WorkResult is the POST /v1/work/{lease}/result body: the outcome of
// executing one work order.
type WorkResult struct {
	// Arm is the executed arm's result (nil when Error is set).
	Arm *ArmResult `json:"arm,omitempty"`
	// Error reports a failed execution; Transient marks it retryable
	// (the server's usual retry taxonomy applies).
	Error     string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// ElapsedSeconds is the worker-side execution time.
	ElapsedSeconds float64 `json:"elapsedSeconds,omitempty"`
}

// WorkReceipt is the result-upload response.
type WorkReceipt struct {
	// Stale reports that the unit had already been resolved (a
	// duplicate or post-reclaim upload) and this payload was discarded
	// — harmless, because execution is idempotent by content hash.
	Stale bool `json:"stale,omitempty"`
}

// WorkLease is the heartbeat response: the renewed lease window.
type WorkLease struct {
	Lease string `json:"lease"`
	// DeadlineSeconds is how long from now the renewed lease lasts.
	DeadlineSeconds float64 `json:"deadlineSeconds"`
}

// WorkStats counts the dispatcher side of distributed execution.
type WorkStats struct {
	QueueDepth   int   `json:"queueDepth"`   // arm units awaiting a claim
	ActiveLeases int   `json:"activeLeases"` // claimed, not yet resolved
	Workers      int   `json:"workers"`      // live workers
	Claims       int64 `json:"claims"`
	Completes    int64 `json:"completes"`
	Reclaims     int64 `json:"reclaims"`     // expired leases re-dispatched
	StaleUploads int64 `json:"staleUploads"` // duplicate uploads ignored
	LocalArms    int64 `json:"localArms"`    // arms run in-process (fallback)
	RemoteArms   int64 `json:"remoteArms"`   // arms executed by workers
}

// CacheStats counts result-store (or file-cache) hits across jobs.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is Hits/(Hits+Misses), 0 when nothing was looked up.
	HitRate float64 `json:"hitRate"`
}

// ServiceStats is the GET /v1/statz counters snapshot.
type ServiceStats struct {
	Status   string     `json:"status"` // "ok" or "draining"
	Jobs     int        `json:"jobs"`   // jobs retained in memory
	Queued   int        `json:"queued"`
	Running  int        `json:"running"`
	Work     WorkStats  `json:"work"`
	Cache    CacheStats `json:"cache"`
	Draining bool       `json:"draining,omitempty"`
}

// ClaimWork claims one work order from the service, long-polling up
// to wait. It returns (nil, nil) when the wait elapsed with no work
// available. 429/503 responses are retried per the client's retry
// policy, honoring Retry-After.
func (c *Client) ClaimWork(ctx context.Context, worker string, wait time.Duration) (*WorkOrder, error) {
	if worker == "" {
		return nil, fmt.Errorf("dlsim: claim needs a worker name")
	}
	var order WorkOrder
	err := c.do(ctx, http.MethodPost, "/v1/work/claim",
		ClaimRequest{Worker: worker, WaitSeconds: int(wait / time.Second)}, &order)
	if err != nil {
		return nil, err
	}
	if order.Lease == "" { // 204: nothing to do
		return nil, nil
	}
	return &order, nil
}

// HeartbeatWork renews a lease and returns its remaining window.
// ErrLeaseExpired (via errors.Is) means the server reclaimed the arm;
// the worker should abandon the unit.
func (c *Client) HeartbeatWork(ctx context.Context, lease string) (time.Duration, error) {
	var out WorkLease
	err := c.do(ctx, http.MethodPost, "/v1/work/"+lease+"/heartbeat", struct{}{}, &out)
	if err != nil {
		return 0, err
	}
	return time.Duration(out.DeadlineSeconds * float64(time.Second)), nil
}

// CompleteWork uploads a work order's outcome under its lease.
func (c *Client) CompleteWork(ctx context.Context, lease string, res WorkResult) (*WorkReceipt, error) {
	var out WorkReceipt
	if err := c.do(ctx, http.MethodPost, "/v1/work/"+lease+"/result", res, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Statz fetches the service's observability counters.
func (c *Client) Statz(ctx context.Context) (*ServiceStats, error) {
	var out ServiceStats
	if err := c.do(ctx, http.MethodGet, "/v1/statz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// execFor adapts the Runner's public ArmExecutor into the engine's
// hook, converting between the internal and wire arm representations
// (their JSON encodings are identical by construction).
func (r *Runner) execFor() experiment.ArmExecutor {
	if r.exec == nil {
		return nil
	}
	return func(ctx context.Context, u experiment.ArmUnit) (experiment.Arm, bool, error) {
		order := WorkOrder{
			Spec:  u.Spec,
			Label: u.Arm.Label,
			Index: u.Index,
			Key:   u.Key,
			Scale: r.scaleName,
			Seed:  r.scale.Seed,
		}
		raw, err := json.Marshal(u.Arm)
		if err != nil {
			return experiment.Arm{}, false, fmt.Errorf("dlsim: encode arm: %w", err)
		}
		if err := json.Unmarshal(raw, &order.Arm); err != nil {
			return experiment.Arm{}, false, fmt.Errorf("dlsim: decode arm: %w", err)
		}
		res, handled, err := r.exec(ctx, order)
		if !handled || err != nil {
			return experiment.Arm{}, handled, err
		}
		if res == nil || res.Label != u.Arm.Label {
			return experiment.Arm{}, true, fmt.Errorf("dlsim: arm executor returned result for %q, want %q",
				resLabel(res), u.Arm.Label)
		}
		return engineArmOf(*res), true, nil
	}
}

func resLabel(res *ArmResult) string {
	if res == nil {
		return "<nil>"
	}
	return res.Label
}

// engineArmOf converts a wire arm result back into the engine's form.
// RoundRecord mirrors metrics.RoundRecord field-for-field and floats
// round-trip JSON exactly, so the conversion preserves bytes.
func engineArmOf(a ArmResult) experiment.Arm {
	s := &metrics.Series{Label: a.Label}
	for _, r := range a.Records {
		s.Append(metrics.RoundRecord{
			Round: r.Round, TestAcc: r.TestAcc, MIAAcc: r.MIAAcc,
			TPRAt1FPR: r.TPRAt1FPR, GenError: r.GenError,
		})
	}
	return experiment.Arm{
		Label:           a.Label,
		Series:          s,
		MessagesSent:    a.MessagesSent,
		BytesSent:       a.BytesSent,
		RealizedEpsilon: a.RealizedEpsilon,
		NoiseMultiplier: a.NoiseMultiplier,
	}
}
