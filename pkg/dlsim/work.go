package dlsim

// Distributed sweep execution: the wire types and client methods of
// the work-claim API (`POST /v1/work/claim`, `POST
// /v1/work/{lease}/result`, `POST /v1/work/{lease}/heartbeat`), plus
// the ArmExecutor hook a Runner uses to offer arms to a remote fleet.
//
// The unit of distribution is one arm, identified by its content hash
// (arm JSON + scale fingerprint + seed, worker count excluded).
// Execution is deterministic, so a work order is idempotent: any
// worker, any number of times, produces byte-identical records —
// which is what makes lease reclaim and duplicate uploads safe.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/metrics"
)

// ErrLeaseExpired reports a work lease the server no longer honors:
// it expired (and the arm was reclaimed for re-dispatch) or was never
// known. Workers should abandon the unit; its result, if uploaded
// anyway, is discarded as a harmless duplicate.
var ErrLeaseExpired = errors.New("dlsim: work lease expired")

// ErrWorkerQuarantined reports a claim the server refused because the
// worker's health score crossed the failure threshold (HTTP 403). The
// response's Retry-After carries the cooldown; claiming again after it
// elapses is the half-open probe that decides reinstatement.
var ErrWorkerQuarantined = errors.New("dlsim: worker quarantined")

// ArmExecutor may execute one arm of a run somewhere other than this
// process. It is consulted for every arm that is not served from a
// resume cache. Return handled=false to decline — the Runner executes
// the arm locally. Return handled=true with a result to substitute
// remote execution; the result must carry the records of the exact
// ordered series the arm produces locally (guaranteed when the remote
// side ran the same order through a Runner).
type ArmExecutor func(ctx context.Context, order WorkOrder) (*ArmResult, bool, error)

// WorkOrder is one leased arm execution: everything a worker needs to
// reproduce the arm byte-for-byte, plus its lease obligations.
type WorkOrder struct {
	// Lease identifies the claim; heartbeat and result URLs embed it.
	// It is empty inside a Runner's ArmExecutor hook (the lease is
	// minted when a worker claims the unit).
	Lease string `json:"lease,omitempty"`
	// Job is the server job this arm belongs to.
	Job string `json:"job,omitempty"`
	// Spec and Index locate the arm within its submitted spec; Label
	// names it; Key is its content hash (the idempotency identity and
	// cluster-wide cache key).
	Spec  string `json:"spec"`
	Label string `json:"label"`
	Index int    `json:"index"`
	Key   string `json:"key"`
	// Arm is the fully expanded declarative arm.
	Arm Arm `json:"arm"`
	// Scale names the experiment scale; Seed is the resolved base seed.
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// LeaseSeconds is how long the lease stays valid without a
	// heartbeat; workers renew at a fraction of it.
	LeaseSeconds float64 `json:"leaseSeconds,omitempty"`
}

// ClaimRequest is the POST /v1/work/claim body.
type ClaimRequest struct {
	// Worker identifies the claiming worker for lease bookkeeping and
	// liveness; any stable non-empty string.
	Worker string `json:"worker"`
	// WaitSeconds long-polls the claim up to this many seconds before
	// the server answers 204 No Content. The server clamps it.
	WaitSeconds int `json:"waitSeconds,omitempty"`
}

// WorkResult is the POST /v1/work/{lease}/result body: the outcome of
// executing one work order.
type WorkResult struct {
	// Arm is the executed arm's result (nil when Error is set).
	Arm *ArmResult `json:"arm,omitempty"`
	// Sum is the sha256 of Arm's canonical JSON encoding (see
	// ArmResult.Checksum). The server re-verifies it before ingesting
	// the result; a missing or mismatched sum rejects the upload and
	// penalizes the worker's health score. Required when Arm is set.
	Sum string `json:"sum,omitempty"`
	// Error reports a failed execution. The server charges it to the
	// worker's health score and re-dispatches the arm to another
	// worker; an arm that fails across distinct workers is contained
	// and executed locally. Transient is advisory.
	Error     string `json:"error,omitempty"`
	Transient bool   `json:"transient,omitempty"`
	// ElapsedSeconds is the worker-side execution time.
	ElapsedSeconds float64 `json:"elapsedSeconds,omitempty"`
}

// RegisterRequest is the POST /v1/work/register and
// /v1/work/deregister body.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// WorkReceipt is the result-upload response.
type WorkReceipt struct {
	// Stale reports that the unit had already been resolved (a
	// duplicate or post-reclaim upload) and this payload was discarded
	// — harmless, because execution is idempotent by content hash.
	Stale bool `json:"stale,omitempty"`
}

// WorkLease is the heartbeat response: the renewed lease window.
type WorkLease struct {
	Lease string `json:"lease"`
	// DeadlineSeconds is how long from now the renewed lease lasts.
	DeadlineSeconds float64 `json:"deadlineSeconds"`
}

// WorkStats counts the dispatcher side of distributed execution.
type WorkStats struct {
	QueueDepth   int   `json:"queueDepth"`   // arm units awaiting a claim
	ActiveLeases int   `json:"activeLeases"` // claimed, not yet resolved
	Workers      int   `json:"workers"`      // live workers
	Claims       int64 `json:"claims"`
	Completes    int64 `json:"completes"`
	Reclaims     int64 `json:"reclaims"`     // expired leases re-dispatched
	StaleUploads int64 `json:"staleUploads"` // duplicate uploads ignored
	LocalArms    int64 `json:"localArms"`    // arms run in-process (fallback)
	RemoteArms   int64 `json:"remoteArms"`   // arms executed by workers
	Poisoned     int64 `json:"poisoned"`     // arms contained after repeated worker failures
	Rejected     int64 `json:"rejected"`     // uploads refused (checksum mismatch)
	Quarantines  int64 `json:"quarantines"`  // quarantine events across the fleet
	Audits       int64 `json:"audits"`       // completed arms re-executed for audit
	AuditsFailed int64 `json:"auditsFailed"` // audits that caught divergent bytes
	// PerWorker is one row per known worker, sorted by name.
	PerWorker []WorkerRow `json:"perWorker,omitempty"`
}

// WorkerRow is one worker's health and lifetime counters in /v1/statz.
type WorkerRow struct {
	Name string `json:"name"`
	// State is "live", "quarantined", "probing" (cooldown elapsed,
	// half-open probe pending), or "draining".
	State string `json:"state"`
	// Score is the decaying failure score; the worker quarantines when
	// it crosses the dispatcher's threshold.
	Score       float64 `json:"score"`
	Leases      int     `json:"leases"` // unresolved leases held
	Completes   int64   `json:"completes"`
	Expiries    int64   `json:"expiries"`
	Errors      int64   `json:"errors"`     // worker-reported execution errors
	Mismatches  int64   `json:"mismatches"` // checksum/audit failures
	Quarantines int64   `json:"quarantines"`
	Registered  bool    `json:"registered,omitempty"`
}

// CacheStats counts result-store (or file-cache) hits across jobs.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is Hits/(Hits+Misses), 0 when nothing was looked up.
	HitRate float64 `json:"hitRate"`
}

// ServiceStats is the GET /v1/statz counters snapshot.
type ServiceStats struct {
	Status   string     `json:"status"` // "ok" or "draining"
	Jobs     int        `json:"jobs"`   // jobs retained in memory
	Queued   int        `json:"queued"`
	Running  int        `json:"running"`
	Work     WorkStats  `json:"work"`
	Cache    CacheStats `json:"cache"`
	Draining bool       `json:"draining,omitempty"`
}

// ClaimWork claims one work order from the service, long-polling up
// to wait. It returns (nil, nil) when the wait elapsed with no work
// available. 429/503 responses are retried per the client's retry
// policy, honoring Retry-After.
func (c *Client) ClaimWork(ctx context.Context, worker string, wait time.Duration) (*WorkOrder, error) {
	if worker == "" {
		return nil, fmt.Errorf("dlsim: claim needs a worker name")
	}
	var order WorkOrder
	err := c.do(ctx, http.MethodPost, "/v1/work/claim",
		ClaimRequest{Worker: worker, WaitSeconds: int(wait / time.Second)}, &order)
	if err != nil {
		return nil, err
	}
	if order.Lease == "" { // 204: nothing to do
		return nil, nil
	}
	return &order, nil
}

// HeartbeatWork renews a lease and returns its remaining window.
// ErrLeaseExpired (via errors.Is) means the server reclaimed the arm;
// the worker should abandon the unit.
func (c *Client) HeartbeatWork(ctx context.Context, lease string) (time.Duration, error) {
	var out WorkLease
	err := c.do(ctx, http.MethodPost, "/v1/work/"+lease+"/heartbeat", struct{}{}, &out)
	if err != nil {
		return 0, err
	}
	return time.Duration(out.DeadlineSeconds * float64(time.Second)), nil
}

// CompleteWork uploads a work order's outcome under its lease.
func (c *Client) CompleteWork(ctx context.Context, lease string, res WorkResult) (*WorkReceipt, error) {
	var out WorkReceipt
	if err := c.do(ctx, http.MethodPost, "/v1/work/"+lease+"/result", res, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterWorker announces a worker to the service ahead of its first
// claim, making the fleet count as live immediately. Registration is
// optional — claiming registers implicitly — but an explicit
// handshake pairs with DeregisterWorker for a clean exit.
func (c *Client) RegisterWorker(ctx context.Context, worker string) error {
	if worker == "" {
		return fmt.Errorf("dlsim: register needs a worker name")
	}
	return c.do(ctx, http.MethodPost, "/v1/work/register", RegisterRequest{Worker: worker}, nil)
}

// DeregisterWorker removes the worker from the service's live set
// immediately, instead of leaving the server to notice its absence
// after the liveness window lapses. Any lease the worker still holds
// is reclaimed for re-dispatch.
func (c *Client) DeregisterWorker(ctx context.Context, worker string) error {
	if worker == "" {
		return fmt.Errorf("dlsim: deregister needs a worker name")
	}
	return c.do(ctx, http.MethodPost, "/v1/work/deregister", RegisterRequest{Worker: worker}, nil)
}

// ExecuteOrder executes one work order exactly as the service would
// run the arm in-process: a single-arm spec through a Runner at the
// order's scale and resolved seed. Execution is deterministic, so the
// produced records are byte-identical wherever the order runs — the
// property lease reclaim, duplicate uploads, and result audits all
// rely on. Workers call it to serve claims; the server calls it to
// re-execute audited arms.
func ExecuteOrder(ctx context.Context, order *WorkOrder, workers int) (*ArmResult, error) {
	runner, err := NewRunner(
		WithScale(order.Scale),
		WithSeed(order.Seed),
		WithWorkers(workers),
	)
	if err != nil {
		return nil, err
	}
	sp := &Spec{Name: order.Spec, Arms: []Arm{order.Arm}}
	res, err := runner.Run(ctx, sp)
	if err != nil {
		return nil, err
	}
	if len(res.Arms) != 1 {
		return nil, fmt.Errorf("dlsim: order %q produced %d arms, want 1", order.Label, len(res.Arms))
	}
	arm := res.Arms[0]
	if arm.Label != order.Label {
		return nil, fmt.Errorf("dlsim: order %q produced arm %q", order.Label, arm.Label)
	}
	return &arm, nil
}

// Statz fetches the service's observability counters.
func (c *Client) Statz(ctx context.Context) (*ServiceStats, error) {
	var out ServiceStats
	if err := c.do(ctx, http.MethodGet, "/v1/statz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// execFor adapts the Runner's public ArmExecutor into the engine's
// hook, converting between the internal and wire arm representations
// (their JSON encodings are identical by construction).
func (r *Runner) execFor() experiment.ArmExecutor {
	if r.exec == nil {
		return nil
	}
	return func(ctx context.Context, u experiment.ArmUnit) (experiment.Arm, bool, error) {
		order := WorkOrder{
			Spec:  u.Spec,
			Label: u.Arm.Label,
			Index: u.Index,
			Key:   u.Key,
			Scale: r.scaleName,
			Seed:  r.scale.Seed,
		}
		raw, err := json.Marshal(u.Arm)
		if err != nil {
			return experiment.Arm{}, false, fmt.Errorf("dlsim: encode arm: %w", err)
		}
		if err := json.Unmarshal(raw, &order.Arm); err != nil {
			return experiment.Arm{}, false, fmt.Errorf("dlsim: decode arm: %w", err)
		}
		res, handled, err := r.exec(ctx, order)
		if !handled || err != nil {
			return experiment.Arm{}, handled, err
		}
		if res == nil || res.Label != u.Arm.Label {
			return experiment.Arm{}, true, fmt.Errorf("dlsim: arm executor returned result for %q, want %q",
				resLabel(res), u.Arm.Label)
		}
		return engineArmOf(*res), true, nil
	}
}

func resLabel(res *ArmResult) string {
	if res == nil {
		return "<nil>"
	}
	return res.Label
}

// engineArmOf converts a wire arm result back into the engine's form.
// RoundRecord mirrors metrics.RoundRecord field-for-field and floats
// round-trip JSON exactly, so the conversion preserves bytes.
func engineArmOf(a ArmResult) experiment.Arm {
	s := &metrics.Series{Label: a.Label}
	for _, r := range a.Records {
		s.Append(metrics.RoundRecord{
			Round: r.Round, TestAcc: r.TestAcc, MIAAcc: r.MIAAcc,
			TPRAt1FPR: r.TPRAt1FPR, GenError: r.GenError,
		})
	}
	return experiment.Arm{
		Label:           a.Label,
		Series:          s,
		MessagesSent:    a.MessagesSent,
		BytesSent:       a.BytesSent,
		RealizedEpsilon: a.RealizedEpsilon,
		NoiseMultiplier: a.NoiseMultiplier,
	}
}
