package dlsim

import (
	"runtime"
	"runtime/debug"

	"gossipmia/internal/spec"
)

// VersionInfo identifies a build of the simulator: its module path and
// version, the Go toolchain it was built with, and the hash of the
// scenario-spec schema it accepts. Matching SpecSchemaHash values mean
// two builds understand exactly the same scenario language.
type VersionInfo struct {
	Module         string `json:"module"`
	Version        string `json:"version"`
	GoVersion      string `json:"goVersion"`
	SpecSchemaHash string `json:"specSchemaHash"`
}

// Version reports this build's identity. The module version comes from
// the embedded build info and is "(devel)" for source builds.
func Version() VersionInfo {
	v := VersionInfo{
		Module:         "gossipmia",
		Version:        "(devel)",
		GoVersion:      runtime.Version(),
		SpecSchemaHash: spec.SchemaHash(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		if info.Main.Path != "" {
			v.Module = info.Main.Path
		}
		if info.Main.Version != "" {
			v.Version = info.Main.Version
		}
	}
	return v
}
