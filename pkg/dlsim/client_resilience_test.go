package dlsim

// Client-side resilience: typed API errors, retry with Retry-After
// honor, and event-stream reconnection — all against scripted fake
// servers, so every failure sequence is exact.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// minimalSpec passes client-side validation.
func minimalSpec() *Spec {
	return &Spec{
		Name: "probe",
		Arms: []Arm{{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2}},
	}
}

// TestAPIErrorTyped: a non-2xx response surfaces as *APIError carrying
// status, message, and the parsed Retry-After, and still satisfies the
// sentinel errors via errors.Is.
func TestAPIErrorTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"job queue full"}`)
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL).Submit(context.Background(), JobRequest{Spec: minimalSpec()})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.Status != http.StatusServiceUnavailable || ae.Message != "job queue full" ||
		ae.RetryAfter != 7*time.Second || !ae.Retryable() {
		t.Fatalf("APIError = %+v", ae)
	}
	if !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("503 does not satisfy ErrJobQueueFull: %v", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("503 must not satisfy ErrNotFound")
	}
}

// TestClientRetriesCongestion: 503s are retried under the policy until
// the service admits the submission; a 4xx is not retried at all.
func TestClientRetriesCongestion(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"job-000001","status":"queued"}`)
	}))
	defer ts.Close()
	job, err := NewClient(ts.URL, WithClientRetry(fastRetry)).
		Submit(context.Background(), JobRequest{Spec: minimalSpec()})
	if err != nil {
		t.Fatalf("submit after retries = %v", err)
	}
	if job.ID != "job-000001" || calls.Load() != 3 {
		t.Fatalf("job %q after %d calls, want job-000001 after 3", job.ID, calls.Load())
	}

	calls.Store(0)
	fatal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"invalid spec"}`)
	}))
	defer fatal.Close()
	_, err = NewClient(fatal.URL, WithClientRetry(fastRetry)).
		Submit(context.Background(), JobRequest{Spec: minimalSpec()})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want 422 APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("422 was retried %d times; client errors are fatal", calls.Load())
	}
}

// TestClientRetryBudgetExhausted: a persistently-congested service
// eventually surfaces its 503 instead of retrying forever.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"still full"}`)
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL, WithClientRetry(fastRetry)).
		Submit(context.Background(), JobRequest{Spec: minimalSpec()})
	if !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("exhausted retries = %v, want queue-full", err)
	}
	if calls.Load() != int64(fastRetry.MaxAttempts) {
		t.Fatalf("made %d calls, want %d (the budget)", calls.Load(), fastRetry.MaxAttempts)
	}
}

// TestEventsReconnectResumes: a stream dropped mid-follow reconnects
// with ?offset set to the lines already consumed, and the subscriber
// sees every record exactly once.
func TestEventsReconnectResumes(t *testing.T) {
	var streams atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		switch streams.Add(1) {
		case 1:
			if off := r.URL.Query().Get("offset"); off != "" {
				t.Errorf("first stream sent offset %q", off)
			}
			// Two records, then the connection "drops" (clean close with
			// the job still running).
			fmt.Fprintln(w, `{"arm":"a","round":0}`)
			fmt.Fprintln(w, `{"arm":"a","round":3}`)
		default:
			if off := r.URL.Query().Get("offset"); off != "2" {
				t.Errorf("reconnect offset = %q, want 2", off)
			}
			// The server replays one already-delivered record (a
			// server-side retry re-streamed it) plus the fresh tail.
			fmt.Fprintln(w, `{"arm":"a","round":3}`)
			fmt.Fprintln(w, `{"arm":"a","round":6}`)
			fmt.Fprintln(w, `{"arm":"b","round":0}`)
		}
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		status := StatusRunning
		if streams.Load() >= 2 {
			status = StatusDone
		}
		fmt.Fprintf(w, `{"id":"j1","status":%q}`, status)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var got []string
	err := NewClient(ts.URL, WithClientRetry(fastRetry)).
		Events(context.Background(), "j1", func(ev Event) error {
			got = append(got, fmt.Sprintf("%s/%d", ev.Arm, ev.Round))
			return nil
		})
	if err != nil {
		t.Fatalf("Events = %v", err)
	}
	want := "a/0,a/3,a/6,b/0"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("delivered %q, want %q (reconnect must dedup)", s, want)
	}
	if streams.Load() != 2 {
		t.Fatalf("streams opened = %d, want 2", streams.Load())
	}
}

// TestEventsDropWithoutRetryFails: without a retry policy a dropped
// stream is an error, not a silent truncation.
func TestEventsDropWithoutRetryFails(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"arm":"a","round":0}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"j1","status":"running"}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	err := NewClient(ts.URL).Events(context.Background(), "j1", func(Event) error { return nil })
	if err == nil {
		t.Fatal("dropped stream reported success")
	}
}

// TestEventsCallbackErrorIsFatal: an error from the subscriber's own
// callback must propagate immediately, never be retried.
func TestEventsCallbackErrorIsFatal(t *testing.T) {
	var streams atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		streams.Add(1)
		fmt.Fprintln(w, `{"arm":"a","round":0}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	sentinel := errors.New("subscriber said no")
	err := NewClient(ts.URL, WithClientRetry(fastRetry)).
		Events(context.Background(), "j1", func(Event) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Events = %v, want the callback's error", err)
	}
	if streams.Load() != 1 {
		t.Fatalf("callback error triggered %d streams; must not retry", streams.Load())
	}
}
