#!/bin/sh
# bench_smoke.sh — run the hot-path benchmarks and emit a JSON snapshot
# (BENCH_smoke.json) for the perf trajectory. Pure POSIX sh + awk; no
# external deps.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_smoke.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Heavy end-to-end benchmarks: two iterations are enough for a smoke
# signal. The cheap hot-path benchmarks run at steady state instead, so
# their allocs/op reflect the per-message discipline (0 on the Instant
# send path), not one-time pool warm-up. Everything cheap enough runs
# -count=3 and the snapshot keeps the per-benchmark minimum: the CI
# host is a shared single-core VM whose noise is strictly additive, so
# a single-shot sample can swing a microbenchmark ±40% between
# sessions and flake bench_compare on code a PR never touched; the min
# of three is a far stabler estimate of the true cost.
go test -run=NONE \
  -bench='BenchmarkParallelSpeedup' \
  -benchmem -benchtime=2x . | tee "$RAW"
go test -run=NONE \
  -bench='BenchmarkIntraArmSpeedup' \
  -benchmem -benchtime=2x -count=3 . | tee -a "$RAW"
go test -run=NONE \
  -bench='BenchmarkStudyRunSAMO' \
  -benchmem -benchtime=100x -count=3 . | tee -a "$RAW"
go test -run=NONE \
  -bench='BenchmarkSimulatorSend|BenchmarkTrainerEpoch|BenchmarkMPEAttack|BenchmarkMLPExampleGrad' \
  -benchmem -benchtime=500x -count=3 . | tee -a "$RAW"
# The evaluation hot path lives behind core's white-box scratch; its
# benchmark is part of the zero-alloc gate below.
go test -run=NONE -bench='BenchmarkEvalRound' \
  -benchmem -benchtime=200x -count=3 ./internal/core | tee -a "$RAW"
go test -run=NONE -bench='Benchmark(Pool|Spawn)ForEach' \
  -benchmem -benchtime=500x -count=3 ./internal/par | tee -a "$RAW"
# Result-store paths: put/get/scan/reopen over a 20k-record corpus,
# plus the resume-scan acceptance pair (per-file backend vs one store
# scan) that justifies the migration.
go test -run=NONE -bench='BenchmarkStore(Put|Get|Scan|Reopen)' \
  -benchmem -benchtime=1000x -count=3 ./internal/store | tee -a "$RAW"
go test -run=NONE -bench='BenchmarkResumeScan' \
  -benchmem -benchtime=3x ./internal/experiment | tee -a "$RAW"
# Distributed dispatch: the claim/complete round-trip cost a worker
# fleet adds per arm (coordination only; arm execution dominates).
go test -run=NONE -bench='BenchmarkDispatcherPipeline' \
  -benchmem -benchtime=500x -count=3 ./internal/distrib | tee -a "$RAW"

# Snapshot: first-seen order, minimum ns/op per benchmark across the
# repeated -count runs (see the host-noise note above).
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in best)) { order[n++] = name }
    if (!(name in best) || ns + 0 < best[name]) {
        best[name] = ns + 0
        rows[name] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                             name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
    }
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", rows[order[i]], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Zero-allocation gate: the per-message send path, the local-update
# trainer path, and the evaluation scratch path must report 0 allocs/op
# at steady state; a single stray allocation fails the smoke so the
# invariants cannot silently rot.
awk '
/^Benchmark(SimulatorSend|TrainerEpoch|EvalRound)/ {
    allocs = ""
    for (i = 2; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i
    if (allocs == "") { printf "bench_smoke: %s reported no allocs/op\n", $1; bad = 1 }
    else if (allocs + 0 != 0) { printf "bench_smoke: %s allocates (%s allocs/op, want 0)\n", $1, allocs; bad = 1 }
    gated++
}
END {
    if (gated < 4) { printf "bench_smoke: zero-alloc gate saw only %d benchmarks (want send x2, trainer, eval)\n", gated; bad = 1 }
    if (bad) exit 1
    printf "zero-alloc gate ok (%d benchmarks)\n", gated
}' "$RAW"

# Parallel-path alloc gate: the node-parallel engine reuses its unit,
# batch, and pool scratch across ticks, so a workers=4 intra-arm run
# must allocate within 8% of the serial run (it sits at ~2.5% today —
# the per-batch goroutine spawns it replaced cost +16.5%). Creep beyond
# the margin means per-batch/per-stage scratch has started leaking back
# into the hot loop.
awk '
/^BenchmarkIntraArmSpeedup\/workers=/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    allocs = ""
    for (i = 2; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i
    if (allocs == "") next
    if (name ~ /workers=1$/) serial = allocs + 0
    if (name ~ /workers=4$/) par = allocs + 0
}
END {
    if (serial == "" || par == "") { print "bench_smoke: alloc gate missing IntraArmSpeedup workers=1 or workers=4"; exit 1 }
    limit = serial * 1.08
    if (par > limit) {
        printf "bench_smoke: parallel path allocates %.0f allocs/op vs %.0f serial (limit %.0f): per-batch scratch is leaking\n", par, serial, limit
        exit 1
    }
    printf "parallel-path alloc gate ok (workers=4: %.0f allocs/op, serial: %.0f)\n", par, serial
}' "$RAW"

# Resume-scan gate: the store's one-scan resume must stay well ahead of
# the per-file path it replaced. It measures ~12x on a quiet host; the
# hard floor sits at 4x so host noise cannot flake the smoke, and
# anything under 10x is flagged for a look.
awk '
/^BenchmarkResumeScan\/files/ { files = $3 }
/^BenchmarkResumeScan\/store/ { store = $3 }
END {
    if (files == "" || store == "" || store + 0 == 0) { print "bench_smoke: resume-scan gate missing BenchmarkResumeScan files/store"; exit 1 }
    ratio = files / store
    if (ratio < 4) {
        printf "bench_smoke: store resume-scan only %.1fx faster than per-file (want >= 4x hard, ~12x typical)\n", ratio
        exit 1
    }
    if (ratio < 10)
        printf "bench_smoke: WARNING: store resume-scan %.1fx over per-file, below the ~12x typical\n", ratio
    else
        printf "resume-scan gate ok (store %.1fx faster than per-file)\n", ratio
}' "$RAW"
