#!/bin/sh
# bench_smoke.sh — run the hot-path benchmarks and emit a JSON snapshot
# (BENCH_smoke.json) for the perf trajectory. Pure POSIX sh + awk; no
# external deps.
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_smoke.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Heavy end-to-end benchmarks: two iterations are enough for a smoke
# signal. The cheap hot-path benchmarks run at steady state instead, so
# their allocs/op reflect the per-message discipline (0 on the Instant
# send path), not one-time pool warm-up.
go test -run=NONE \
  -bench='BenchmarkStudyRunSAMO|BenchmarkParallelSpeedup' \
  -benchmem -benchtime=2x . | tee "$RAW"
go test -run=NONE \
  -bench='BenchmarkSimulatorSend|BenchmarkTrainerEpoch|BenchmarkMPEAttack|BenchmarkMLPExampleGrad' \
  -benchmem -benchtime=500x . | tee -a "$RAW"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns != "") {
        rows[n++] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                            name, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs))
    }
}
END {
    printf "{\n  \"generated\": \"%s\",\n  \"benchmarks\": [\n", date
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
