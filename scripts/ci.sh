#!/bin/sh
# ci.sh — the tier-1 gate plus gofmt cleanliness, vet, the race
# detector over the parallelized packages, the fuzz-corpus smoke (fuzz
# targets run once over their seed corpus, no fuzzing time), a
# declarative-spec end-to-end smoke at tiny scale, a race-enabled
# service smoke (serve + submit + stream + cancel over HTTP), and the
# pkg/dlsim API gate (no internal types in exported signatures).
set -eu
cd "$(dirname "$0")/.."

# gofmt cleanliness: the build must be formatting-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
# staticcheck is advisory-but-enforced where available: the container
# image may not ship it, so the gate activates only when installed.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
    echo "staticcheck ok"
else
    echo "staticcheck not installed; skipping"
fi
go test -race ./...
go test -run='^Fuzz' ./internal/wire

# pkg/dlsim API gate: the public SDK must not leak internal types into
# its exported signatures (the stability promise of the package). The
# grep matches qualified references to internal packages in the
# documented API surface.
api=$(go doc -all ./pkg/dlsim)
leaks=$(echo "$api" | grep -nE 'internal/|\b(experiment|metrics|sink|spec|core|gossip|netmodel|par|data|nn|mia|server)\.[A-Z]' || true)
if [ -n "$leaks" ]; then
    echo "pkg/dlsim leaks internal types into its exported API:" >&2
    echo "$leaks" >&2
    exit 1
fi
echo "pkg/dlsim api gate ok"

# Spec-engine smoke: run one example spec end-to-end at tiny scale,
# exercising the manifest, per-arm caches, event streams, and resume.
specout=$(mktemp -d)
cleanup() {
    [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$specout"
}
trap cleanup EXIT
go run ./cmd/dlsim sweep -spec examples/specs/latency_churn_dp.json -scale tiny -out "$specout/run"
test -f "$specout/run/manifest.json"
test -f "$specout/run/results.csv"
go run ./cmd/dlsim sweep -spec examples/specs/latency_churn_dp.json -scale tiny -out "$specout/run" -resume
# The legacy flat invocation must keep working.
go run ./cmd/dlsim -spec examples/specs/latency_churn_dp.json -scale tiny >/dev/null
echo "spec smoke ok"

# Service smoke, race-enabled: start serve on an ephemeral port, submit
# a tiny example spec through the CLI thin client (streams NDJSON
# events), then submit a second job over raw HTTP and cancel it.
go build -race -o "$specout/dlsim" ./cmd/dlsim
"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny >"$specout/serve.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/serve.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/serve.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "serve never printed its address" >&2; cat "$specout/serve.log" >&2; exit 1; }

"$specout/dlsim" run -spec examples/specs/latency_churn_dp.json -scale tiny -remote "$base" >"$specout/remote.log"
grep -q '^event ' "$specout/remote.log" || { echo "remote run streamed no events" >&2; cat "$specout/remote.log" >&2; exit 1; }

# Version endpoints agree between the local build and the service.
"$specout/dlsim" version >"$specout/ver-local.log"
"$specout/dlsim" version -addr "$base" >"$specout/ver-remote.log"
cmp -s "$specout/ver-local.log" "$specout/ver-remote.log" || { echo "local and service version reports diverge" >&2; exit 1; }

# Cancel flow over raw HTTP: a quick-scale job is slow enough to catch.
printf '{"scale":"quick","spec":%s}' "$(cat examples/specs/latency_churn_dp.json)" >"$specout/jobreq.json"
job=$(curl -sf -X POST -H 'Content-Type: application/json' --data-binary @"$specout/jobreq.json" "$base/v1/jobs")
job_id=$(echo "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$job_id" ] || { echo "no job id in: $job" >&2; exit 1; }
curl -sf -X DELETE "$base/v1/jobs/$job_id" >/dev/null
status=$(curl -sf "$base/v1/jobs/$job_id" | sed -n 's/.*"status": *"\([^"]*\)".*/\1/p' | head -n 1)
case "$status" in
    cancelled|running) ;; # running = cancel delivered, worker about to observe it
    *) echo "job after DELETE has status '$status'" >&2; exit 1 ;;
esac
curl -sf "$base/v1/healthz" >/dev/null
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "service smoke ok"

# Chaos smoke, race-enabled: serve with injected transient faults, a
# retry budget, and a checkpoint directory; submit the example spec;
# SIGTERM mid-run (graceful drain checkpoints at an arm boundary);
# restart clean and resubmit. The resumed run must finish and its
# results.csv must be byte-identical to the fault-free sweep's from the
# spec smoke above (same spec, scale, and seed).
ckpt="$specout/ckpt"
"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny \
    -checkpoint "$ckpt" -inject "arm-error=3,errors=1" -retries 3 -retry-base 10ms \
    -drain 50ms >"$specout/chaos1.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/chaos1.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/chaos1.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "chaos serve never printed its address" >&2; cat "$specout/chaos1.log" >&2; exit 1; }
printf '{"scale":"tiny","spec":%s}' "$(cat examples/specs/latency_churn_dp.json)" >"$specout/chaosreq.json"
curl -sf -X POST -H 'Content-Type: application/json' --data-binary @"$specout/chaosreq.json" "$base/v1/jobs" >/dev/null
sleep 0.5
kill -TERM "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny -checkpoint "$ckpt" >"$specout/chaos2.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/chaos2.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/chaos2.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "chaos restart never printed its address" >&2; cat "$specout/chaos2.log" >&2; exit 1; }
# The CLI thin client blocks until the resubmitted job is terminal.
"$specout/dlsim" run -spec examples/specs/latency_churn_dp.json -scale tiny -remote "$base" >"$specout/chaos-run.log"
chaos_csv=$(find "$ckpt" -name results.csv | head -n 1)
[ -n "$chaos_csv" ] || { echo "chaos run left no results.csv in the checkpoint dir" >&2; exit 1; }
cmp -s "$chaos_csv" "$specout/run/results.csv" || {
    echo "chaos-resumed results.csv diverges from the fault-free run:" >&2
    diff "$chaos_csv" "$specout/run/results.csv" >&2 || true
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "chaos smoke ok"

# Store smoke: a multi-thousand-arm tiny sweep against the embedded
# result store, killed hard mid-run (SIGKILL — no drain, no handlers),
# reopened, resumed to completion, and compared byte-for-byte against
# the file backend's results.csv for the same spec. This proves the
# store's three claims end-to-end: crash consistency (a torn log
# recovers to the last durable arm), resume serves durable arms from
# cache without per-arm files, and the two backends are byte-identical.
storespec="$specout/store-sweep.json"
awk 'BEGIN {
    printf "{\"name\":\"store smoke\",\"sweep\":{\"base\":{\"label\":\"b\",\"corpus\":\"cifar10\",\"protocol\":\"samo\",\"viewSize\":2},\"axes\":[{\"field\":\"beta\",\"values\":["
    for (i = 0; i < 2000; i++) printf "%s0.%04d", (i ? "," : ""), 1000 + i
    printf "]}]}}\n"
}' > "$storespec"
go build -o "$specout/dlsim-store" ./cmd/dlsim
"$specout/dlsim-store" sweep -spec "$storespec" -scale tiny -out "$specout/store-file" -events none >/dev/null

"$specout/dlsim-store" sweep -spec "$storespec" -scale tiny -out "$specout/store-run" -store -events none >"$specout/store-kill.log" 2>&1 &
sweep_pid=$!
rows=0
i=0
while [ $i -lt 600 ]; do
    # The redirection itself fails until the sweep creates the file,
    # and a failed redirection bypasses wc's 2>/dev/null — test first.
    rows=$([ -f "$specout/store-run/results.csv" ] && wc -l < "$specout/store-run/results.csv" || echo 0)
    [ "$rows" -ge 300 ] && break
    kill -0 "$sweep_pid" 2>/dev/null || { echo "store sweep died before the kill point" >&2; cat "$specout/store-kill.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ "$rows" -ge 300 ] || { echo "store sweep never reached the kill threshold" >&2; exit 1; }
kill -9 "$sweep_pid"
wait "$sweep_pid" 2>/dev/null || true

if [ -d "$specout/store-run/arms" ]; then
    echo "store sweep created a per-arm file directory" >&2
    exit 1
fi
"$specout/dlsim-store" sweep -spec "$storespec" -scale tiny -out "$specout/store-run" -store -events none -resume >"$specout/store-resume.log"
grep -Eq '\([1-9][0-9]* from cache\)' "$specout/store-resume.log" || {
    echo "store resume served nothing from cache:" >&2
    cat "$specout/store-resume.log" >&2
    exit 1
}
cmp -s "$specout/store-run/results.csv" "$specout/store-file/results.csv" || {
    echo "store-backed results.csv diverges from the file backend:" >&2
    diff "$specout/store-run/results.csv" "$specout/store-file/results.csv" | head >&2
    exit 1
}
"$specout/dlsim-store" list -store "$specout/store-run/store" -limit 5 | head -n 1 | grep -q '^2000 cached arms' || {
    echo "list -store does not report 2000 cached arms" >&2
    exit 1
}
echo "store smoke ok"

# Distributed smoke, race-enabled: serve with a checkpoint + shared
# result store and a short lease window, attach a two-worker pull
# fleet, submit a sweep, and SIGKILL one worker mid-run — the lease
# expires, the arm is reclaimed, and the job must still complete with
# a results.csv byte-identical to the single-process sweep. Then
# restart the server over the same store with no workers and resubmit:
# every arm must be served from the cluster-shared store with zero
# re-execution (no events streamed, all-hits cache counters).
distspec=examples/specs/protocol_latency_grid.json
"$specout/dlsim-store" sweep -spec "$distspec" -scale tiny -out "$specout/dist-file" -events none >/dev/null
dckpt="$specout/dist-ckpt"
"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny \
    -checkpoint "$dckpt" -store "$dckpt/store" -lease 2s >"$specout/dist.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/dist.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/dist.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "distributed serve never printed its address" >&2; cat "$specout/dist.log" >&2; exit 1; }
"$specout/dlsim" worker -server "$base" -name w1 -parallel 2 >"$specout/dist-w1.log" 2>&1 &
w1_pid=$!
"$specout/dlsim" worker -server "$base" -name w2 -parallel 2 >"$specout/dist-w2.log" 2>&1 &
w2_pid=$!
"$specout/dlsim" run -spec "$distspec" -scale tiny -workers 4 -remote "$base" >"$specout/dist-run.log" 2>&1 &
run_pid=$!
# Kill w2 the moment it has an arm on lease: a mid-run worker loss.
i=0
while [ $i -lt 300 ]; do
    grep -q 'claimed arm' "$specout/dist-w2.log" 2>/dev/null && break
    kill -0 "$run_pid" 2>/dev/null || break
    sleep 0.05
    i=$((i + 1))
done
kill -9 "$w2_pid" 2>/dev/null || true
wait "$run_pid" || { echo "distributed run failed after worker kill" >&2; cat "$specout/dist-run.log" >&2; exit 1; }
dist_csv=$(find "$dckpt" -name results.csv | head -n 1)
[ -n "$dist_csv" ] || { echo "distributed run left no results.csv" >&2; exit 1; }
cmp -s "$dist_csv" "$specout/dist-file/results.csv" || {
    echo "worker-fleet results.csv diverges from the single-process sweep:" >&2
    diff "$dist_csv" "$specout/dist-file/results.csv" | head >&2
    exit 1
}
grep -q 'arm done' "$specout/dist-w1.log" || { echo "surviving worker executed no arms" >&2; cat "$specout/dist-w1.log" >&2; exit 1; }
kill "$w1_pid" 2>/dev/null || true
wait "$w1_pid" 2>/dev/null || true
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""

# Restart over the same store, no fleet: the resubmission is served
# entirely from the cluster-shared cache.
"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny \
    -checkpoint "$dckpt" -store "$dckpt/store" >"$specout/dist2.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/dist2.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/dist2.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "distributed restart never printed its address" >&2; cat "$specout/dist2.log" >&2; exit 1; }
"$specout/dlsim" run -spec "$distspec" -scale tiny -remote "$base" >"$specout/dist-cached.log"
if grep -q '^event ' "$specout/dist-cached.log"; then
    echo "store-served resubmission re-executed arms (streamed events)" >&2
    exit 1
fi
"$specout/dlsim" list -jobs -addr "$base" >"$specout/dist-statz.log"
grep -q 'cache: 6 hits / 0 misses' "$specout/dist-statz.log" || {
    echo "statz does not report an all-hit cache after the store-served rerun:" >&2
    cat "$specout/dist-statz.log" >&2
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "distributed smoke ok"

# Self-healing fleet smoke, race-enabled: a three-worker fleet where
# one worker corrupts every upload after checksumming it (`-inject
# upload-corrupt`). The server must reject the corrupt bytes and
# quarantine the rogue, one healthy worker is SIGTERM'd mid-run and
# must finish its leased arm, upload it, and deregister cleanly, and
# the sweep's results.csv must still be byte-identical to the
# single-process baseline. statz must show the penalty counters and
# the per-worker table.
hckpt="$specout/heal-ckpt"
"$specout/dlsim" serve -addr 127.0.0.1:0 -scale tiny \
    -checkpoint "$hckpt" -store "$hckpt/store" -lease 2s >"$specout/heal.log" 2>&1 &
serve_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
    base=$(sed -n 's|^dlsim: serving on \(http://[^ ]*\).*|\1|p' "$specout/heal.log")
    [ -n "$base" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$specout/heal.log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$base" ] || { echo "self-heal serve never printed its address" >&2; cat "$specout/heal.log" >&2; exit 1; }
"$specout/dlsim" worker -server "$base" -name good1 >"$specout/heal-good1.log" 2>&1 &
hw1_pid=$!
"$specout/dlsim" worker -server "$base" -name good2 >"$specout/heal-good2.log" 2>&1 &
hw2_pid=$!
"$specout/dlsim" worker -server "$base" -name rogue \
    -inject "upload-corrupt=1,corruptions=99" >"$specout/heal-rogue.log" 2>&1 &
hw3_pid=$!
"$specout/dlsim" run -spec "$distspec" -scale tiny -workers 4 -remote "$base" >"$specout/heal-run.log" 2>&1 &
run_pid=$!
# SIGTERM good2 the moment it holds an arm: a graceful drain mid-run.
# Unlike the SIGKILL in the distributed smoke, the worker must finish
# the leased arm, upload it, and say goodbye — no lease expiry.
i=0
while [ $i -lt 300 ]; do
    grep -q 'claimed arm' "$specout/heal-good2.log" 2>/dev/null && break
    kill -0 "$run_pid" 2>/dev/null || break
    sleep 0.05
    i=$((i + 1))
done
kill -TERM "$hw2_pid" 2>/dev/null || true
wait "$run_pid" || { echo "self-heal run failed" >&2; cat "$specout/heal-run.log" >&2; exit 1; }
heal_csv=$(find "$hckpt" -name results.csv | head -n 1)
[ -n "$heal_csv" ] || { echo "self-heal run left no results.csv" >&2; exit 1; }
cmp -s "$heal_csv" "$specout/dist-file/results.csv" || {
    echo "self-heal fleet results.csv diverges from the single-process sweep:" >&2
    diff "$heal_csv" "$specout/dist-file/results.csv" | head >&2
    exit 1
}
wait "$hw2_pid" 2>/dev/null || true
grep -q 'arm done' "$specout/heal-good2.log" || { echo "drained worker never finished its leased arm" >&2; cat "$specout/heal-good2.log" >&2; exit 1; }
grep -q 'deregistered' "$specout/heal-good2.log" || { echo "drained worker never deregistered" >&2; cat "$specout/heal-good2.log" >&2; exit 1; }
"$specout/dlsim" list -jobs -addr "$base" >"$specout/heal-statz.log"
grep -q 'health: .*rejected=' "$specout/heal-statz.log" || {
    echo "statz shows no rejected-upload counters:" >&2
    cat "$specout/heal-statz.log" >&2
    exit 1
}
grep -E 'rogue +quarantined' "$specout/heal-statz.log" >/dev/null || {
    echo "statz does not show the rogue worker quarantined:" >&2
    cat "$specout/heal-statz.log" >&2
    exit 1
}
kill -TERM "$hw1_pid" "$hw3_pid" 2>/dev/null || true
wait "$hw1_pid" 2>/dev/null || true
wait "$hw3_pid" 2>/dev/null || true
"$specout/dlsim" list -jobs -addr "$base" >"$specout/heal-statz2.log"
grep -q 'workers=0' "$specout/heal-statz2.log" || {
    echo "deregistered fleet still counted in statz:" >&2
    cat "$specout/heal-statz2.log" >&2
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_pid=""
echo "self-heal smoke ok"

# Intra-arm scaling smoke: a quick IntraArmSpeedup run at workers={1,4}.
# Advisory, not a gate — single-run ns/op on a shared host is too noisy
# to fail CI on, and on a 1-core runtime (GOMAXPROCS=1) parity is the
# physical ceiling — but the ratio is always logged, so flat scaling can
# never regress silently again. bench_compare gates the recorded
# snapshots; this catches drift between them.
go test -run=NONE -bench='BenchmarkIntraArmSpeedup/workers=(1|4)$' \
    -benchtime=2x . >"$specout/scaling.log" 2>&1 || { cat "$specout/scaling.log" >&2; exit 1; }
awk -v procs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}" '
/^BenchmarkIntraArmSpeedup\/workers=1/ { w1 = $3 }
/^BenchmarkIntraArmSpeedup\/workers=4/ { w4 = $3 }
END {
    if (w1 == "" || w4 == "") { print "ci: scaling smoke ran no benchmarks"; exit 1 }
    ratio = w1 / w4
    printf "intra-arm scaling smoke: workers=4 speedup %.2fx over workers=1 (GOMAXPROCS=%s)\n", ratio, procs
    if (ratio < 1.5)
        printf "ci: WARNING: intra-arm speedup %.2fx below 1.5x%s\n", ratio,
            (procs + 0 <= 1 ? " (expected: single-P runtime cannot overlap batches)" : " on a multi-core host: scheduler may be fragmenting")
}' "$specout/scaling.log"
echo "scaling smoke ok"
