#!/bin/sh
# ci.sh — the tier-1 gate plus gofmt cleanliness, vet, the race
# detector over the parallelized packages, the fuzz-corpus smoke (fuzz
# targets run once over their seed corpus, no fuzzing time), and a
# declarative-spec end-to-end smoke at tiny scale.
set -eu
cd "$(dirname "$0")/.."

# gofmt cleanliness: the build must be formatting-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...
go test -run='^Fuzz' ./internal/wire

# Spec-engine smoke: run one example spec end-to-end at tiny scale,
# exercising the manifest, per-arm caches, event streams, and resume.
specout=$(mktemp -d)
trap 'rm -rf "$specout"' EXIT
go run ./cmd/dlsim -spec examples/specs/latency_churn_dp.json -scale tiny -out "$specout/run"
test -f "$specout/run/manifest.json"
test -f "$specout/run/results.csv"
go run ./cmd/dlsim -spec examples/specs/latency_churn_dp.json -scale tiny -out "$specout/run" -resume
echo "spec smoke ok"
