#!/bin/sh
# ci.sh — the tier-1 gate plus vet, the race detector over the
# parallelized packages, and the fuzz-corpus smoke (fuzz targets run
# once over their seed corpus, no fuzzing time).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go test -run='^Fuzz' ./internal/wire
