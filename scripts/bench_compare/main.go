// Command bench_compare diffs two BENCH_*.json snapshots (the format
// scripts/bench_smoke.sh emits) and fails on ns/op regressions beyond a
// threshold, so perf can be gated per PR:
//
//	go run ./scripts/bench_compare -old BENCH_0003.json -new BENCH_0004.json
//	make bench-compare OLD=BENCH_0003.json NEW=BENCH_0004.json
//
// Benchmarks present in only one snapshot are listed but never fail the
// comparison (the matrix legitimately grows and gets deduplicated);
// only a shared benchmark whose ns/op grew by more than -threshold
// percent exits non-zero.
//
// For benchmark families with /workers=N variants the tool also
// computes each variant's speedup ratio over the family's workers=1
// baseline — the scaling signal the per-variant ns/op deltas hide: a
// uniform 2x slowdown passes the delta gate on every variant while
// worsening nothing about scaling, whereas a workers=4 variant that
// stops beating workers=1 is exactly the flat-scaling failure this
// repo has already shipped once. A family speedup that falls by more
// than -threshold percent of its old value fails the comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type snapshot struct {
	Generated  string  `json:"generated"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func load(path string) (*snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compare renders the regression table and returns the names of
// benchmarks regressing beyond thresholdPct.
func compare(oldSnap, newSnap *snapshot, thresholdPct float64) (table string, regressions []string) {
	oldByName := make(map[string]entry, len(oldSnap.Benchmarks))
	for _, e := range oldSnap.Benchmarks {
		oldByName[e.Name] = e
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))
	out := fmt.Sprintf("%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range newSnap.Benchmarks {
		seen[e.Name] = true
		o, ok := oldByName[e.Name]
		if !ok {
			out += fmt.Sprintf("%-55s %14s %14.1f %8s\n", e.Name, "-", e.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		mark := ""
		if delta > thresholdPct {
			mark = "  REGRESSION"
			regressions = append(regressions, e.Name)
		}
		out += fmt.Sprintf("%-55s %14.1f %14.1f %+7.1f%%%s\n", e.Name, o.NsPerOp, e.NsPerOp, delta, mark)
	}
	for _, e := range oldSnap.Benchmarks {
		if !seen[e.Name] {
			out += fmt.Sprintf("%-55s %14.1f %14s %8s\n", e.Name, e.NsPerOp, "-", "removed")
		}
	}
	return out, regressions
}

// familySpeedups extracts, for every benchmark family with /workers=N
// variants and a workers=1 baseline, the speedup ratio ns(workers=1) /
// ns(workers=N) of each variant.
func familySpeedups(s *snapshot) map[string]map[int]float64 {
	type variant struct {
		workers int
		ns      float64
	}
	byFamily := make(map[string][]variant)
	for _, e := range s.Benchmarks {
		i := strings.LastIndex(e.Name, "/workers=")
		if i < 0 {
			continue
		}
		w, err := strconv.Atoi(e.Name[i+len("/workers="):])
		if err != nil || w < 1 || e.NsPerOp <= 0 {
			continue
		}
		byFamily[e.Name[:i]] = append(byFamily[e.Name[:i]], variant{w, e.NsPerOp})
	}
	out := make(map[string]map[int]float64)
	for fam, vs := range byFamily {
		var base float64
		for _, v := range vs {
			if v.workers == 1 {
				base = v.ns
			}
		}
		if base <= 0 {
			continue
		}
		m := make(map[int]float64, len(vs))
		for _, v := range vs {
			if v.workers > 1 {
				m[v.workers] = base / v.ns
			}
		}
		if len(m) > 0 {
			out[fam] = m
		}
	}
	return out
}

// compareSpeedups renders the scaling table and returns the
// family/workers pairs whose speedup fell by more than thresholdPct
// percent of the old value. Families or worker counts present in only
// one snapshot are shown but never fail the gate.
func compareSpeedups(oldSnap, newSnap *snapshot, thresholdPct float64) (table string, regressions []string) {
	oldSp, newSp := familySpeedups(oldSnap), familySpeedups(newSnap)
	if len(oldSp) == 0 && len(newSp) == 0 {
		return "", nil
	}
	fams := make([]string, 0, len(newSp))
	for fam := range newSp {
		fams = append(fams, fam)
	}
	for fam := range oldSp {
		if _, ok := newSp[fam]; !ok {
			fams = append(fams, fam)
		}
	}
	sort.Strings(fams)
	out := fmt.Sprintf("\n%-47s %8s %12s %12s %8s\n", "speedup vs workers=1", "workers", "old", "new", "delta")
	for _, fam := range fams {
		workers := make([]int, 0, len(newSp[fam])+len(oldSp[fam]))
		for w := range newSp[fam] {
			workers = append(workers, w)
		}
		for w := range oldSp[fam] {
			if _, ok := newSp[fam][w]; !ok {
				workers = append(workers, w)
			}
		}
		sort.Ints(workers)
		for _, w := range workers {
			o, hasOld := oldSp[fam][w]
			n, hasNew := newSp[fam][w]
			switch {
			case !hasNew:
				out += fmt.Sprintf("%-47s %8d %11.2fx %12s %8s\n", fam, w, o, "-", "removed")
			case !hasOld:
				out += fmt.Sprintf("%-47s %8d %12s %11.2fx %8s\n", fam, w, "-", n, "new")
			default:
				delta := (n - o) / o * 100
				mark := ""
				if -delta > thresholdPct {
					mark = "  SPEEDUP REGRESSION"
					regressions = append(regressions, fmt.Sprintf("%s/workers=%d", fam, w))
				}
				out += fmt.Sprintf("%-47s %8d %11.2fx %11.2fx %+7.1f%%%s\n", fam, w, o, n, delta, mark)
			}
		}
	}
	return out, regressions
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json")
	newPath := flag.String("new", "", "candidate BENCH_*.json")
	threshold := flag.Float64("threshold", 15, "max tolerated ns/op growth, percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: bench_compare -old OLD.json -new NEW.json [-threshold PCT]")
		os.Exit(2)
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	table, regressions := compare(oldSnap, newSnap, *threshold)
	fmt.Print(table)
	spTable, spRegressions := compareSpeedups(oldSnap, newSnap, *threshold)
	fmt.Print(spTable)
	failed := false
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: %d benchmark(s) regressed more than %.0f%% ns/op: %v\n",
			len(regressions), *threshold, regressions)
		failed = true
	}
	if len(spRegressions) > 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: %d variant(s) lost more than %.0f%% of their workers=1 speedup: %v\n",
			len(spRegressions), *threshold, spRegressions)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("bench_compare: no ns/op or speedup regression beyond %.0f%% (old %s, new %s)\n",
		*threshold, oldSnap.Generated, newSnap.Generated)
}
