// Command bench_compare diffs two BENCH_*.json snapshots (the format
// scripts/bench_smoke.sh emits) and fails on ns/op regressions beyond a
// threshold, so perf can be gated per PR:
//
//	go run ./scripts/bench_compare -old BENCH_0003.json -new BENCH_0004.json
//	make bench-compare OLD=BENCH_0003.json NEW=BENCH_0004.json
//
// Benchmarks present in only one snapshot are listed but never fail the
// comparison (the matrix legitimately grows and gets deduplicated);
// only a shared benchmark whose ns/op grew by more than -threshold
// percent exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type snapshot struct {
	Generated  string  `json:"generated"`
	Benchmarks []entry `json:"benchmarks"`
}

type entry struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func load(path string) (*snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compare renders the regression table and returns the names of
// benchmarks regressing beyond thresholdPct.
func compare(oldSnap, newSnap *snapshot, thresholdPct float64) (table string, regressions []string) {
	oldByName := make(map[string]entry, len(oldSnap.Benchmarks))
	for _, e := range oldSnap.Benchmarks {
		oldByName[e.Name] = e
	}
	seen := make(map[string]bool, len(newSnap.Benchmarks))
	out := fmt.Sprintf("%-55s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range newSnap.Benchmarks {
		seen[e.Name] = true
		o, ok := oldByName[e.Name]
		if !ok {
			out += fmt.Sprintf("%-55s %14s %14.1f %8s\n", e.Name, "-", e.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		mark := ""
		if delta > thresholdPct {
			mark = "  REGRESSION"
			regressions = append(regressions, e.Name)
		}
		out += fmt.Sprintf("%-55s %14.1f %14.1f %+7.1f%%%s\n", e.Name, o.NsPerOp, e.NsPerOp, delta, mark)
	}
	for _, e := range oldSnap.Benchmarks {
		if !seen[e.Name] {
			out += fmt.Sprintf("%-55s %14.1f %14s %8s\n", e.Name, e.NsPerOp, "-", "removed")
		}
	}
	return out, regressions
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json")
	newPath := flag.String("new", "", "candidate BENCH_*.json")
	threshold := flag.Float64("threshold", 15, "max tolerated ns/op growth, percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: bench_compare -old OLD.json -new NEW.json [-threshold PCT]")
		os.Exit(2)
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	table, regressions := compare(oldSnap, newSnap, *threshold)
	fmt.Print(table)
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: %d benchmark(s) regressed more than %.0f%% ns/op: %v\n",
			len(regressions), *threshold, regressions)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: no ns/op regression beyond %.0f%% (old %s, new %s)\n",
		*threshold, oldSnap.Generated, newSnap.Generated)
}
