package main

import (
	"strings"
	"testing"
)

func snap(entries ...entry) *snapshot { return &snapshot{Benchmarks: entries} }

func TestCompareFlagsOnlyThresholdBreaches(t *testing.T) {
	oldSnap := snap(
		entry{Name: "BenchmarkA", NsPerOp: 100},
		entry{Name: "BenchmarkB", NsPerOp: 100},
		entry{Name: "BenchmarkGone", NsPerOp: 50},
	)
	newSnap := snap(
		entry{Name: "BenchmarkA", NsPerOp: 114}, // +14%: inside threshold
		entry{Name: "BenchmarkB", NsPerOp: 130}, // +30%: regression
		entry{Name: "BenchmarkNew", NsPerOp: 10},
	)
	table, regs := compare(oldSnap, newSnap, 15)
	if len(regs) != 1 || regs[0] != "BenchmarkB" {
		t.Fatalf("regressions = %v, want [BenchmarkB]", regs)
	}
	for _, want := range []string{"REGRESSION", "new", "removed", "+14.0%", "+30.0%"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareImprovementsAndExactMatchPass(t *testing.T) {
	oldSnap := snap(entry{Name: "BenchmarkA", NsPerOp: 100}, entry{Name: "BenchmarkC", NsPerOp: 200})
	newSnap := snap(entry{Name: "BenchmarkA", NsPerOp: 40}, entry{Name: "BenchmarkC", NsPerOp: 200})
	if _, regs := compare(oldSnap, newSnap, 15); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}
