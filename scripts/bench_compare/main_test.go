package main

import (
	"strings"
	"testing"
)

func snap(entries ...entry) *snapshot { return &snapshot{Benchmarks: entries} }

func TestCompareFlagsOnlyThresholdBreaches(t *testing.T) {
	oldSnap := snap(
		entry{Name: "BenchmarkA", NsPerOp: 100},
		entry{Name: "BenchmarkB", NsPerOp: 100},
		entry{Name: "BenchmarkGone", NsPerOp: 50},
	)
	newSnap := snap(
		entry{Name: "BenchmarkA", NsPerOp: 114}, // +14%: inside threshold
		entry{Name: "BenchmarkB", NsPerOp: 130}, // +30%: regression
		entry{Name: "BenchmarkNew", NsPerOp: 10},
	)
	table, regs := compare(oldSnap, newSnap, 15)
	if len(regs) != 1 || regs[0] != "BenchmarkB" {
		t.Fatalf("regressions = %v, want [BenchmarkB]", regs)
	}
	for _, want := range []string{"REGRESSION", "new", "removed", "+14.0%", "+30.0%"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareImprovementsAndExactMatchPass(t *testing.T) {
	oldSnap := snap(entry{Name: "BenchmarkA", NsPerOp: 100}, entry{Name: "BenchmarkC", NsPerOp: 200})
	newSnap := snap(entry{Name: "BenchmarkA", NsPerOp: 40}, entry{Name: "BenchmarkC", NsPerOp: 200})
	if _, regs := compare(oldSnap, newSnap, 15); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestFamilySpeedupsExtractsWorkerVariants(t *testing.T) {
	s := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=2", NsPerOp: 50},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 25},
		entry{Name: "BenchmarkPar/figure2/workers=1", NsPerOp: 300},
		entry{Name: "BenchmarkPar/figure2/workers=4", NsPerOp: 150},
		entry{Name: "BenchmarkNoBaseline/workers=4", NsPerOp: 10}, // no workers=1: skipped
		entry{Name: "BenchmarkScalar", NsPerOp: 7},                // no variants: skipped
	)
	sp := familySpeedups(s)
	if len(sp) != 2 {
		t.Fatalf("families = %v, want BenchmarkIntra and BenchmarkPar/figure2", sp)
	}
	if got := sp["BenchmarkIntra"][4]; got != 4.0 {
		t.Fatalf("BenchmarkIntra workers=4 speedup = %v, want 4.0", got)
	}
	if got := sp["BenchmarkPar/figure2"][4]; got != 2.0 {
		t.Fatalf("BenchmarkPar/figure2 workers=4 speedup = %v, want 2.0", got)
	}
}

func TestCompareSpeedupsFailsOnScalingLoss(t *testing.T) {
	oldSnap := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 40}, // 2.5x
	)
	newSnap := snap(
		// Uniformly 10% faster — the per-variant delta gate sees only
		// improvements — but workers=4 no longer scales: 1.0x vs 2.5x.
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 90},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 90},
	)
	table, regs := compareSpeedups(oldSnap, newSnap, 15)
	if len(regs) != 1 || regs[0] != "BenchmarkIntra/workers=4" {
		t.Fatalf("speedup regressions = %v, want [BenchmarkIntra/workers=4]", regs)
	}
	if !strings.Contains(table, "SPEEDUP REGRESSION") {
		t.Fatalf("table missing regression mark:\n%s", table)
	}
}

func TestCompareSpeedupsTolerantToNewAndRemoved(t *testing.T) {
	oldSnap := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=8", NsPerOp: 20},
	)
	newSnap := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 30},
	)
	table, regs := compareSpeedups(oldSnap, newSnap, 15)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	for _, want := range []string{"new", "removed"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCompareSpeedupsImprovementPasses(t *testing.T) {
	oldSnap := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 101}, // 0.99x: the shipped flat-scaling bug
	)
	newSnap := snap(
		entry{Name: "BenchmarkIntra/workers=1", NsPerOp: 100},
		entry{Name: "BenchmarkIntra/workers=4", NsPerOp: 38}, // 2.6x after the fix
	)
	if _, regs := compareSpeedups(oldSnap, newSnap, 15); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}
