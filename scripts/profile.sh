#!/bin/sh
# profile.sh — capture pprof CPU + allocation profiles for the two
# workloads the perf work steers by: the figure2 end-to-end run (via
# dlsim's -cpuprofile/-memprofile flags) and the dense-wake arm (via
# the IntraArmSpeedup benchmark). Writes raw profiles plus plain-text
# top-20 summaries under profiles/ — the summaries are what DESIGN.md's
# "Where the time goes" section is built from.
#
# Usage: scripts/profile.sh [outdir]   (default: profiles/)
set -eu
cd "$(dirname "$0")/.."

OUT=${1:-profiles}
mkdir -p "$OUT"

echo "== figure2 (tiny scale, workers=4) =="
go build -o "$OUT/dlsim" ./cmd/dlsim
"$OUT/dlsim" run -figure 2 -scale tiny -workers 4 \
    -cpuprofile "$OUT/figure2_cpu.pprof" \
    -memprofile "$OUT/figure2_mem.pprof" >/dev/null
rm -f "$OUT/dlsim"

echo "== dense-wake arm (IntraArmSpeedup benchmark, workers sweep) =="
go test -run=NONE -bench='BenchmarkIntraArmSpeedup' -benchtime=5x \
    -cpuprofile "$OUT/intraarm_cpu.pprof" \
    -memprofile "$OUT/intraarm_mem.pprof" \
    -o "$OUT/bench.test" . >/dev/null

for p in figure2_cpu figure2_mem intraarm_cpu intraarm_mem; do
    case "$p" in
        *_mem) sample="-sample_index=alloc_space" ;;
        *) sample="" ;;
    esac
    go tool pprof $sample -top -nodecount=20 "$OUT/$p.pprof" \
        >"$OUT/$p.txt" 2>/dev/null || echo "pprof summary failed for $p" >&2
done
rm -f "$OUT/bench.test"

echo "profiles and top-20 summaries written to $OUT/"
grep -m4 'flat%' -A6 "$OUT/intraarm_cpu.txt" | head -8 || true
