// Hot-path benchmarks tracking the allocation and throughput trajectory
// of the simulator's inner loops (see BENCH_0001.json): one full SAMO
// study arm exercises the per-message send path and the per-batch
// gradient path together; the trainer benchmark isolates local updates.
package gossipmia

import (
	"testing"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// smallStudy is a fixed-size SAMO arm small enough to run per benchmark
// iteration but large enough that send/merge/train dominate.
func smallStudy(b *testing.B) *core.Study {
	b.Helper()
	train := core.TrainConfig{
		Hidden:      []int{32},
		LR:          0.05,
		Momentum:    0.9,
		BatchSize:   8,
		LocalEpochs: 1,
	}
	study, err := core.NewStudy(core.StudyConfig{
		Label:    "bench/samo/k=3",
		Corpus:   data.CIFAR10,
		Protocol: "samo",
		Sim: gossip.Config{
			Nodes: 8, ViewSize: 3, Rounds: 4, Seed: 42,
		},
		Train:          train,
		Part:           core.PartitionConfig{TrainPerNode: 24, TestPerNode: 24},
		GlobalTestSize: 64,
		EvalEvery:      4,
		EvalNodes:      4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return study
}

// BenchmarkStudyRunSAMO runs one small SAMO arm end to end; its B/op and
// allocs/op track the combined send + gradient hot paths.
func BenchmarkStudyRunSAMO(b *testing.B) {
	study := smallStudy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSim builds a small simulator for send-path benchmarks.
func benchSim(b *testing.B, protocol string) *gossip.Simulator {
	b.Helper()
	rng := tensor.NewRNG(17)
	gen, err := data.NewGenerator(data.CIFAR10, rng)
	if err != nil {
		b.Fatal(err)
	}
	nodes := 6
	parts := make([]data.NodeData, nodes)
	for i := range parts {
		parts[i] = data.NodeData{Train: gen.Sample(8, rng), Test: gen.Sample(8, rng)}
	}
	model, err := nn.NewMLP([]int{gen.Dim(), 48, gen.Classes()}, rng)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := gossip.ProtocolByName(protocol)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := gossip.New(gossip.Config{Nodes: nodes, ViewSize: 2, Rounds: 1, Seed: 17},
		proto, model, parts, gossip.NewSGDUpdaterFactory(nn.SGDConfig{LR: 0.05}, 4, 1))
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

// BenchmarkSimulatorSend isolates the per-message transmission path.
// samo-nodelay exercises the synchronous fast path (receiver reads the
// sender's live params, zero copies); samo exercises the pooled-inbox
// path (arena-backed copy, recycled on merge). The seed implementation
// cloned the full parameter vector on every send.
func BenchmarkSimulatorSend(b *testing.B) {
	b.Run("sync-merge", func(b *testing.B) {
		sim := benchSim(b, "samo-nodelay")
		params := sim.Nodes()[0].Model.ParamsCopy()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Send(0, 1, params); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled-inbox", func(b *testing.B) {
		sim := benchSim(b, "samo")
		params := sim.Nodes()[0].Model.ParamsCopy()
		receiver := sim.Nodes()[1]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sim.Send(0, 1, params); err != nil {
				b.Fatal(err)
			}
			receiver.RecycleInbox()
		}
	})
}

// BenchmarkTrainerEpoch isolates the local-update gradient path: one
// epoch of minibatch SGD on a single node's split.
func BenchmarkTrainerEpoch(b *testing.B) {
	rng := tensor.NewRNG(3)
	gen, err := data.NewGenerator(data.CIFAR10, rng)
	if err != nil {
		b.Fatal(err)
	}
	ds := gen.Sample(64, rng)
	model, err := nn.NewMLP([]int{gen.Dim(), 48, gen.Classes()}, rng)
	if err != nil {
		b.Fatal(err)
	}
	updater := gossip.NewSGDUpdater(nn.SGDConfig{LR: 0.05, Momentum: 0.9}, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := updater.Update(model, ds, rng); err != nil {
			b.Fatal(err)
		}
	}
}
